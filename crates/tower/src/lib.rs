//! **TowerSketch** — ChameleMon's flow classifier (§3.2.1) — plus the
//! estimation algorithms the control plane runs on top of it (§4.2):
//! linear counting for cardinality, the MRAC EM algorithm for flow-size
//! distribution, and entropy derived from the distribution.
//!
//! TowerSketch is a CM-style sketch whose `l` arrays trade counter width for
//! counter count under a fixed bit budget (`w_i · δ_i` constant, with
//! `δ_{i-1} < δ_i`): many narrow counters catch mouse flows cheaply while a
//! few wide counters track elephants. A counter at its maximum value is
//! *overflowed* and treated as `+∞`; queries return the minimum over the
//! mapped counters.

#![forbid(unsafe_code)]

pub mod mrac;

pub use mrac::{mrac_em, MracConfig};

use chm_common::hash::{BatchHasher, FastRange, HashFamily};

/// Configuration of one counter level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TowerLevel {
    /// Number of counters `w_i`.
    pub width: usize,
    /// Counter width `δ_i` in bits (1..=32).
    pub bits: u32,
}

impl TowerLevel {
    /// Saturation value `2^δ − 1`, representing `+∞` (§3.2.1).
    pub fn saturation(&self) -> u64 {
        (1u64 << self.bits) - 1
    }
}

/// Configuration of a [`TowerSketch`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TowerConfig {
    /// Levels ordered by increasing counter width (`δ_{i-1} < δ_i`).
    pub levels: Vec<TowerLevel>,
    /// Master hash seed.
    pub seed: u64,
}

impl TowerConfig {
    /// The testbed configuration (§5.2): one 8-bit array of 32768 counters
    /// and one 16-bit array of 16384 counters.
    pub fn paper_default(seed: u64) -> Self {
        TowerConfig {
            levels: vec![
                TowerLevel { width: 32_768, bits: 8 },
                TowerLevel { width: 16_384, bits: 16 },
            ],
            seed,
        }
    }

    /// A two-level configuration scaled to a memory budget in bytes, keeping
    /// the paper's 8-bit/16-bit shape with the byte budget split evenly
    /// between levels (so `w_1 = 2·w_2`, matching `w·δ` constant).
    pub fn sized(total_bytes: usize, seed: u64) -> Self {
        let half = total_bytes / 2;
        TowerConfig {
            levels: vec![
                TowerLevel { width: half.max(2), bits: 8 },
                TowerLevel { width: (half / 2).max(1), bits: 16 },
            ],
            seed,
        }
    }

    /// Total memory in bytes (`Σ w_i · δ_i / 8`).
    pub fn memory_bytes(&self) -> usize {
        self.levels
            .iter()
            .map(|l| l.width * l.bits as usize / 8)
            .sum()
    }
}

/// The TowerSketch data structure. `PartialEq` compares full counter state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TowerSketch {
    cfg: TowerConfig,
    hashes: HashFamily,
    /// Precomputed branch-free range reduction per level.
    reducers: Vec<FastRange>,
    /// Counter storage per level (stored as u32; saturation per level).
    counters: Vec<Vec<u32>>,
}

impl TowerSketch {
    /// Creates an empty sketch.
    pub fn new(cfg: TowerConfig) -> Self {
        assert!(!cfg.levels.is_empty(), "TowerSketch needs at least one level");
        for w in cfg.levels.windows(2) {
            assert!(
                w[0].bits < w[1].bits,
                "levels must have strictly increasing counter widths"
            );
        }
        assert!(
            cfg.levels.iter().all(|l| l.bits >= 1 && l.bits <= 32 && l.width > 0),
            "level widths must be in 1..=32 bits with non-zero counters"
        );
        let hashes = HashFamily::new(cfg.seed, cfg.levels.len());
        let reducers = cfg.levels.iter().map(|l| FastRange::new(l.width)).collect();
        let counters = cfg.levels.iter().map(|l| vec![0u32; l.width]).collect();
        TowerSketch { cfg, hashes, reducers, counters }
    }

    /// The sketch configuration.
    pub fn config(&self) -> &TowerConfig {
        &self.cfg
    }

    /// Inserts one packet of the flow identified by `key` (a pre-mixed
    /// 64-bit key, see [`chm_common::FlowId::key64`]) and returns the
    /// *post-insertion* online query result — the data plane classifies the
    /// packet's flow with this value (§3.2.1 "Packet processing").
    ///
    /// Hot path: the key is mixed once ([`BatchHasher`]) and each level's
    /// counter index comes from its precomputed branch-free [`FastRange`]
    /// reduction. No allocation, no division.
    #[inline]
    // chm-lint: hot
    pub fn insert_and_query(&mut self, key: u64) -> u64 {
        let bh = BatchHasher::new(key);
        let mut min = u64::MAX;
        for (i, level) in self.cfg.levels.iter().enumerate() {
            let j = bh.index(self.hashes.get(i), self.reducers[i]);
            let sat = level.saturation() as u32;
            let c = &mut self.counters[i][j];
            if *c < sat {
                *c += 1; // saturating add: never wraps past 2^δ − 1
            }
            let v = if *c >= sat { u64::MAX } else { *c as u64 };
            min = min.min(v);
        }
        min
    }

    /// Inserts a **burst** of `n` consecutive packets of the flow `key` and
    /// classifies every packet against the thresholds `(tl, th)` in closed
    /// form — the batched equivalent of calling
    /// [`insert_and_query`](Self::insert_and_query) `n` times and bucketing
    /// each post-insertion size as LL (`< tl`), HL (`< th`) or HH (`≥ th`).
    ///
    /// Returns `(n_ll, n_hl, n_hh)`, which partition the burst **in packet
    /// order**: the per-packet size sequence is non-decreasing (every mapped
    /// counter increments per packet and saturates upward), so the class
    /// sequence is always `LL* HL* HH*`.
    ///
    /// Why closed form works: packet `j` (1-based) of the burst sees size
    /// `min_i v_i(j)` with `v_i(j) = c_i + j` while `c_i + j <
    /// saturation_i`, else `+∞`. Hence `size_j < T` iff
    /// `j < max_i (min(sat_i, T) − c_i)`, giving the count below any
    /// threshold with one pass over the levels — no per-packet work at all.
    /// Resulting counter state is `min(c_i + n, sat_i)`, identical to `n`
    /// saturating unit increments.
    #[inline]
    // chm-lint: hot
    pub fn insert_burst(&mut self, key: u64, n: u64, tl: u64, th: u64) -> (u64, u64, u64) {
        debug_assert!(tl <= th);
        if n == 0 {
            return (0, 0, 0);
        }
        let bh = BatchHasher::new(key);
        // Packets with size strictly below T: j < max_i (min(sat_i, T) − c_i).
        let mut k_tl = 0u64;
        let mut k_th = 0u64;
        for (i, level) in self.cfg.levels.iter().enumerate() {
            let j = bh.index(self.hashes.get(i), self.reducers[i]);
            let sat = level.saturation();
            let c = &mut self.counters[i][j];
            let before = *c as u64;
            k_tl = k_tl.max(sat.min(tl).saturating_sub(before));
            k_th = k_th.max(sat.min(th).saturating_sub(before));
            *c = (before + n).min(sat) as u32;
        }
        let below_tl = n.min(k_tl.saturating_sub(1));
        let below_th = n.min(k_th.saturating_sub(1));
        (below_tl, below_th - below_tl, n - below_th)
    }

    /// Online query: minimum over mapped counters, `u64::MAX` if all mapped
    /// counters are overflowed.
    #[inline]
    pub fn query(&self, key: u64) -> u64 {
        let bh = BatchHasher::new(key);
        let mut min = u64::MAX;
        for (i, level) in self.cfg.levels.iter().enumerate() {
            let j = bh.index(self.hashes.get(i), self.reducers[i]);
            let c = self.counters[i][j] as u64;
            let v = if c >= level.saturation() { u64::MAX } else { c };
            min = min.min(v);
        }
        min
    }

    /// Like [`query`](Self::query) but saturates to the largest level's
    /// saturation value instead of `u64::MAX` (useful for size estimates).
    pub fn query_clamped(&self, key: u64) -> u64 {
        let q = self.query(key);
        let max_sat = self
            .cfg
            .levels
            .last()
            .expect("TowerSketch::new asserts at least one level")
            .saturation();
        q.min(max_sat)
    }

    /// Resets all counters (epoch rotation re-uses the physical arrays, §B).
    pub fn clear(&mut self) {
        for level in &mut self.counters {
            level.fill(0);
        }
    }

    /// Raw access to a level's counters (for MRAC / linear counting).
    pub fn level_counters(&self, i: usize) -> &[u32] {
        &self.counters[i]
    }

    /// Linear-counting cardinality estimate using the level with the most
    /// counters (§4.2): `n̂ = −w·ln(V₀)`.
    pub fn cardinality_estimate(&self) -> f64 {
        let (i, level) = self
            .cfg
            .levels
            .iter()
            .enumerate()
            .max_by_key(|(_, l)| l.width)
            .expect("at least one level");
        let zero = self.counters[i].iter().filter(|&&c| c == 0).count();
        if zero == 0 {
            // Saturated: half-count continuity correction (V₀ = 0.5/w).
            let w = level.width as f64;
            return w * (2.0 * w).ln();
        }
        -(level.width as f64) * (zero as f64 / level.width as f64).ln()
    }

    /// Histogram of counter values for level `i` (`hist[v]` = #counters with
    /// value `v`), input to MRAC.
    pub fn level_histogram(&self, i: usize) -> Vec<f64> {
        let sat = self.cfg.levels[i].saturation() as usize;
        let mut hist = vec![0.0; sat + 1];
        for &c in &self.counters[i] {
            hist[(c as usize).min(sat)] += 1.0;
        }
        hist
    }

    /// Estimates the flow-size distribution (`out[s]` = #flows of size `s`)
    /// by running MRAC EM on each level over its responsible size range
    /// (§4.2): level `i` covers `[2^{δ_{i−1}} − 1, 2^{δ_i} − 1)` and the
    /// remaining range `[2^{δ_l} − 1, ∞)` comes from the HH-flowset tail
    /// sizes supplied by the caller.
    pub fn flow_size_distribution(&self, hh_tail_sizes: &[u64], em: &MracConfig) -> Vec<f64> {
        let top_sat = self
            .cfg
            .levels
            .last()
            .expect("TowerSketch::new asserts at least one level")
            .saturation() as usize;
        let max_size = hh_tail_sizes
            .iter()
            .map(|&s| s as usize)
            .max()
            .unwrap_or(0)
            .max(top_sat);
        let mut dist = vec![0.0; max_size + 1];
        let mut prev_bound = 1usize; // sizes below 1 don't exist
        for (i, level) in self.cfg.levels.iter().enumerate() {
            let hist = self.level_histogram(i);
            let est = mrac_em(&hist, level.width, em);
            let upper = level.saturation() as usize; // exclusive bound
            for (s, v) in est.iter().enumerate().take(upper).skip(prev_bound) {
                dist[s] += v;
            }
            prev_bound = upper;
        }
        // Tail from the HH flowset (flows ≥ top saturation).
        for &s in hh_tail_sizes {
            let s = s as usize;
            if s >= prev_bound && s < dist.len() {
                dist[s] += 1.0;
            }
        }
        dist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn small() -> TowerConfig {
        TowerConfig {
            levels: vec![
                TowerLevel { width: 2048, bits: 8 },
                TowerLevel { width: 1024, bits: 16 },
            ],
            seed: 1,
        }
    }

    #[test]
    fn query_never_underestimates() {
        let mut t = TowerSketch::new(small());
        let mut rng = StdRng::seed_from_u64(2);
        let mut truth = std::collections::HashMap::new();
        for _ in 0..5000 {
            let k: u64 = rng.gen_range(0..500);
            t.insert_and_query(k);
            *truth.entry(k).or_insert(0u64) += 1;
        }
        for (k, v) in truth {
            assert!(t.query(k) >= v, "flow {k}: query {} < true {v}", t.query(k));
        }
    }

    #[test]
    fn single_flow_exact() {
        let mut t = TowerSketch::new(small());
        for _ in 0..37 {
            t.insert_and_query(99);
        }
        assert_eq!(t.query(99), 37);
        assert_eq!(t.query_clamped(99), 37);
    }

    #[test]
    fn insert_and_query_matches_query() {
        let mut t = TowerSketch::new(small());
        for i in 0..10 {
            let r = t.insert_and_query(7);
            assert_eq!(r, t.query(7));
            assert_eq!(r, i + 1);
        }
    }

    #[test]
    fn saturation_is_infinity() {
        let mut t = TowerSketch::new(TowerConfig {
            levels: vec![TowerLevel { width: 4, bits: 2 }],
            seed: 3,
        });
        // 2-bit counter saturates at 3 (treated as +∞).
        for _ in 0..10 {
            t.insert_and_query(1);
        }
        assert_eq!(t.query(1), u64::MAX);
        assert_eq!(t.query_clamped(1), 3);
    }

    #[test]
    fn eight_bit_level_saturates_but_sixteen_bit_continues() {
        let mut t = TowerSketch::new(small());
        for _ in 0..400 {
            t.insert_and_query(5);
        }
        // 8-bit level is pinned at 255 (=∞); 16-bit level carries 400.
        assert_eq!(t.query(5), 400);
    }

    #[test]
    fn burst_insert_matches_per_packet_classification() {
        let mut rng = StdRng::seed_from_u64(77);
        for (tl, th) in [(1u64, 1u64), (1, 10), (3, 9), (5, 5), (200, 300)] {
            let mut a = TowerSketch::new(small());
            let mut b = TowerSketch::new(small());
            // Interleave bursts of many flows, including repeats.
            for _ in 0..300 {
                let key: u64 = rng.gen_range(0..60);
                let n: u64 = rng.gen_range(1..40);
                // Reference: per-packet inserts classified one at a time.
                let (mut ll, mut hl, mut hh) = (0u64, 0, 0);
                for _ in 0..n {
                    let size = a.insert_and_query(key);
                    if size >= th {
                        hh += 1;
                    } else if size >= tl {
                        hl += 1;
                    } else {
                        ll += 1;
                    }
                }
                let burst = b.insert_burst(key, n, tl, th);
                assert_eq!(burst, (ll, hl, hh), "key={key} n={n} tl={tl} th={th}");
            }
            // Counter state must be identical afterwards.
            for i in 0..a.cfg.levels.len() {
                assert_eq!(a.level_counters(i), b.level_counters(i), "level {i}");
            }
        }
    }

    #[test]
    fn burst_insert_saturation_and_degenerate_cases() {
        let mut t = TowerSketch::new(TowerConfig {
            levels: vec![TowerLevel { width: 4, bits: 2 }],
            seed: 3,
        });
        // Saturating burst: counter pins at 3 (∞), every packet ≥ any T.
        let (ll, hl, hh) = t.insert_burst(1, 100, 2, 3);
        // Reference semantics: sizes 1, 2, then MAX... → ll=1 (size 1 < 2),
        // hl=1 (size 2 < 3), rest HH.
        assert_eq!((ll, hl, hh), (1, 1, 98));
        assert_eq!(t.query(1), u64::MAX);
        assert_eq!(t.insert_burst(1, 0, 1, 1), (0, 0, 0));
    }

    #[test]
    fn clear_resets() {
        let mut t = TowerSketch::new(small());
        t.insert_and_query(1);
        t.clear();
        assert_eq!(t.query(1), 0);
    }

    #[test]
    fn cardinality_estimate_close() {
        let mut t = TowerSketch::new(small());
        let mut rng = StdRng::seed_from_u64(4);
        let n = 800u64;
        for k in 0..n {
            let reps = rng.gen_range(1..4);
            for _ in 0..reps {
                t.insert_and_query(k);
            }
        }
        let est = t.cardinality_estimate();
        let re = (est - n as f64).abs() / n as f64;
        assert!(re < 0.1, "estimate {est} vs {n} (re {re:.3})");
    }

    #[test]
    fn paper_default_memory() {
        let cfg = TowerConfig::paper_default(0);
        // 32768 * 1 byte + 16384 * 2 bytes = 64 KiB
        assert_eq!(cfg.memory_bytes(), 65_536);
    }

    #[test]
    fn sized_respects_budget_roughly() {
        let cfg = TowerConfig::sized(40_000, 0);
        let m = cfg.memory_bytes();
        assert!((30_000..=40_000).contains(&m), "memory {m}");
    }

    #[test]
    #[should_panic(expected = "increasing")]
    fn non_increasing_widths_panic() {
        TowerSketch::new(TowerConfig {
            levels: vec![
                TowerLevel { width: 16, bits: 16 },
                TowerLevel { width: 16, bits: 8 },
            ],
            seed: 0,
        });
    }

    #[test]
    fn level_histogram_sums_to_width() {
        let mut t = TowerSketch::new(small());
        for k in 0..100 {
            t.insert_and_query(k);
        }
        let h = t.level_histogram(0);
        let total: f64 = h.iter().sum();
        assert_eq!(total, 2048.0);
    }

    #[test]
    fn distribution_estimate_shape() {
        // 300 flows of size 1, 60 of size 5: estimator should put clearly
        // more mass at 1 than at 5, with roughly correct totals.
        let mut t = TowerSketch::new(small());
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..300 {
            let k: u64 = rng.gen();
            t.insert_and_query(k);
        }
        for _ in 0..60 {
            let k: u64 = rng.gen();
            for _ in 0..5 {
                t.insert_and_query(k);
            }
        }
        let dist = t.flow_size_distribution(&[], &MracConfig::default());
        assert!(dist[1] > 150.0, "size-1 mass {}", dist[1]);
        assert!(dist[1] > dist[5], "size-1 {} vs size-5 {}", dist[1], dist[5]);
        let total: f64 = dist.iter().sum();
        assert!((total - 360.0).abs() / 360.0 < 0.35, "total {total}");
    }
}
