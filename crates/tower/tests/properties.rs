//! Property-based tests of TowerSketch and the estimation algorithms.

use chm_tower::{mrac_em, MracConfig, TowerConfig, TowerLevel, TowerSketch};
use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::HashMap;

fn small_tower(seed: u64) -> TowerSketch {
    TowerSketch::new(TowerConfig {
        levels: vec![
            TowerLevel { width: 256, bits: 8 },
            TowerLevel { width: 128, bits: 16 },
        ],
        seed,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The classifier estimate is monotone in insertions and never
    /// underestimates (below saturation).
    #[test]
    fn monotone_overestimate(stream in vec(0u64..100, 1..800), seed in any::<u64>()) {
        let mut t = small_tower(seed);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        let mut last: HashMap<u64, u64> = HashMap::new();
        for &k in &stream {
            let q = t.insert_and_query(k);
            *truth.entry(k).or_insert(0) += 1;
            if let Some(&prev) = last.get(&k) {
                prop_assert!(q >= prev, "estimate shrank");
            }
            last.insert(k, q);
        }
        for (&k, &v) in &truth {
            prop_assert!(t.query(k) >= v);
        }
    }

    /// Clearing restores the all-zero state exactly.
    #[test]
    fn clear_is_complete(stream in vec(any::<u64>(), 0..300), seed in any::<u64>()) {
        let mut t = small_tower(seed);
        for &k in &stream {
            t.insert_and_query(k);
        }
        t.clear();
        prop_assert!(t.level_counters(0).iter().all(|&c| c == 0));
        prop_assert!(t.level_counters(1).iter().all(|&c| c == 0));
        prop_assert_eq!(t.cardinality_estimate(), 0.0);
    }

    /// The level histogram always sums to the level width.
    #[test]
    fn histogram_mass(stream in vec(any::<u64>(), 0..500), seed in any::<u64>()) {
        let mut t = small_tower(seed);
        for &k in &stream {
            t.insert_and_query(k);
        }
        for lvl in 0..2 {
            let h = t.level_histogram(lvl);
            let total: f64 = h.iter().sum();
            prop_assert_eq!(total as usize, t.level_counters(lvl).len());
        }
    }

    /// MRAC output is non-negative and roughly conserves flow mass at
    /// moderate loads.
    #[test]
    fn mrac_nonnegative(flows in 1usize..400, seed in any::<u64>()) {
        use rand::{Rng, SeedableRng};
        let m = 1024usize;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut counters = vec![0usize; m];
        for _ in 0..flows {
            counters[rng.gen_range(0..m)] += 1;
        }
        let vmax = counters.iter().copied().max().unwrap();
        let mut hist = vec![0.0; vmax + 1];
        for &c in &counters {
            hist[c] += 1.0;
        }
        let est = mrac_em(&hist, m, &MracConfig::default());
        prop_assert!(est.iter().all(|&x| x >= 0.0));
        let total: f64 = est.iter().sum();
        let re = (total - flows as f64).abs() / flows as f64;
        prop_assert!(re < 0.25, "mass {total} vs {flows}");
    }

    /// Cardinality estimation error stays bounded at sub-50% load.
    #[test]
    fn cardinality_bounded_error(flows in 1u64..120, seed in any::<u64>()) {
        let mut t = small_tower(seed);
        for k in 0..flows {
            t.insert_and_query(k);
        }
        let est = t.cardinality_estimate();
        // Linear counting at this load: generous 35% + small absolute slack.
        prop_assert!((est - flows as f64).abs() <= flows as f64 * 0.35 + 5.0,
            "est {est} vs {flows}");
    }
}
