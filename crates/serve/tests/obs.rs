//! Telemetry determinism: under the injected zero clock, the serve
//! runtime's Prometheus snapshot and JSONL trace must be byte-identical
//! across double runs AND across shard layouts (the spans the runtime
//! records are layout-independent stage/decode spans, never per-shard
//! engine internals).

use chm_netsim::Sharding;
use chm_scenarios::Scenario;
use chm_serve::{FaultPlan, ServeConfig, ServeRuntime};

fn scenario(seed: u64) -> Scenario {
    Scenario::builder("obs_test")
        .seed(seed)
        .flows(300)
        .congestion()
        .queue_model(8)
        .microburst(0.3, 2)
        .slow_drain_tor(1, 0.55)
        .build()
}

fn telemetry_after(epochs: u64, shards: Option<usize>) -> (String, String) {
    let cfg = ServeConfig::new(scenario(11), FaultPlan::standard(11));
    let mut rt = ServeRuntime::new(cfg);
    if let Some(s) = shards {
        rt.set_sharding(Sharding { shards: s, workers: s });
    }
    for _ in 0..epochs {
        rt.step();
    }
    (rt.obs().prom_snapshot(), rt.obs().jsonl_line(epochs - 1))
}

#[test]
fn telemetry_is_byte_identical_across_runs_and_shard_layouts() {
    let serial = telemetry_after(24, None);
    assert_eq!(serial, telemetry_after(24, None), "double run must match");
    assert_eq!(serial, telemetry_after(24, Some(1)), "shards=1 must match serial");
    assert_eq!(serial, telemetry_after(24, Some(2)), "shards=2 must match serial");
}

#[test]
fn span_tree_reflects_the_service_pipeline() {
    let cfg = ServeConfig::new(scenario(3), FaultPlan::standard(3));
    let mut rt = ServeRuntime::new(cfg);
    for _ in 0..8 {
        rt.step();
    }
    let spans = &rt.obs().spans;
    assert!(spans.balanced(), "every epoch span must be closed");
    let (epochs, total) = spans.get(&["epoch"]).expect("epoch span recorded");
    assert_eq!(epochs, 8);
    assert_eq!(total, 0.0, "zero clock → zero durations");
    assert_eq!(spans.get(&["epoch", "replay"]).map(|(c, _)| c), Some(8));
    assert_eq!(spans.get(&["epoch", "collect"]).map(|(c, _)| c), Some(8));
    assert_eq!(spans.get(&["epoch", "analyze"]).map(|(c, _)| c), Some(8));
    assert_eq!(spans.get(&["epoch", "localize"]).map(|(c, _)| c), Some(8));
    // Edge decodes appear under analyze (testbed topology has edges).
    assert!(
        spans.get(&["epoch", "analyze", "decode", "edge_0"]).is_some(),
        "per-edge decode spans recorded: {:?}",
        spans.flatten()
    );
    let prom = rt.obs().prom_snapshot();
    assert!(prom.contains("chm_serve_epochs_total 8"));
    assert!(prom.contains("# TYPE chm_serve_reaction_seconds histogram"));
}
