//! Service-mode integration tests: crash/restore byte-identity, watchdog
//! degradation under sustained faults, backpressure, and stream
//! determinism — the tentpole properties of `chm-serve`.

use chm_scenarios::Scenario;
use chm_serve::{
    EpochRecord, FaultPlan, ServeConfig, ServeRuntime, ServeSnapshot, ServeState,
};

/// A small but fully loaded serve scenario: congestion-coupled queueing,
/// microbursts, a slow-draining ToR — everything the localizer feeds on.
fn scenario(seed: u64) -> Scenario {
    Scenario::builder("svc_test")
        .seed(seed)
        .flows(300)
        .congestion()
        .queue_model(8)
        .microburst(0.3, 2)
        .slow_drain_tor(1, 0.55)
        .build()
}

fn run_epochs(rt: &mut ServeRuntime, n: u64) -> Vec<EpochRecord> {
    (0..n).map(|_| rt.step()).collect()
}

fn jsonl(records: &[EpochRecord]) -> String {
    records.iter().map(|r| r.to_jsonl() + "\n").collect()
}

#[test]
fn identical_configs_stream_identical_bytes() {
    let cfg = ServeConfig::new(scenario(5), FaultPlan::standard(5));
    let a = jsonl(&run_epochs(&mut ServeRuntime::new(cfg.clone()), 16));
    let b = jsonl(&run_epochs(&mut ServeRuntime::new(cfg), 16));
    assert_eq!(a, b, "same config must serve byte-identical metrics");
}

/// The headline property: kill the process at ANY epoch boundary,
/// serialize the snapshot to text, parse it back, restore into a fresh
/// process — the remainder of the stream (decisions and metrics bytes) is
/// identical to the uninterrupted run's.
#[test]
fn crash_restore_at_every_boundary_is_byte_identical() {
    const EPOCHS: u64 = 18;
    let cfg = ServeConfig::new(scenario(7), FaultPlan::standard(7));
    let baseline = run_epochs(&mut ServeRuntime::new(cfg.clone()), EPOCHS);
    let baseline_jsonl = jsonl(&baseline);

    for k in 1..EPOCHS {
        // Run to the boundary, snapshot, and "crash".
        let mut first = ServeRuntime::new(cfg.clone());
        let prefix = run_epochs(&mut first, k);
        let wire = first.snapshot().serialize();
        drop(first);

        // New process: parse, restore, continue.
        let snap = ServeSnapshot::parse(&wire).expect("snapshot parses");
        let mut second = ServeRuntime::new(cfg.clone());
        second.restore(&snap);
        assert_eq!(second.next_epoch(), k, "restore must reposition the stream");
        let suffix = run_epochs(&mut second, EPOCHS - k);

        let mut combined = prefix;
        combined.extend(suffix);
        assert_eq!(
            jsonl(&combined),
            baseline_jsonl,
            "restore at epoch {k} diverged from the uninterrupted run"
        );
    }
}

#[test]
fn faultless_profile_neither_degrades_nor_goes_blind() {
    let cfg = ServeConfig::new(scenario(11), FaultPlan::none(11));
    let mut rt = ServeRuntime::new(cfg);
    let records = run_epochs(&mut rt, 12);
    assert!(records.iter().all(|r| !r.blind && !r.paused));
    assert!(records.iter().all(|r| r.state == "live"));
    assert!(records.iter().all(|r| r.lost == 0 && r.duplicates == 0));
    // Quality holds up: the pipeline still detects victims.
    let mean_f1: f64 =
        records.iter().map(|r| r.f1).sum::<f64>() / records.len() as f64;
    assert!(mean_f1 > 0.5, "mean F1 {mean_f1} too low for a clean control plane");
}

#[test]
fn sustained_pauses_degrade_then_service_recovers() {
    // Pause every epoch: the watchdog must degrade after stall_threshold.
    let mut cfg = ServeConfig::new(
        scenario(13),
        FaultPlan { pause: 1.0, ..FaultPlan::none(13) },
    );
    cfg.stall_threshold = 3;
    cfg.base_recovery = 2;
    let mut rt = ServeRuntime::new(cfg);
    let records = run_epochs(&mut rt, 6);
    assert!(records[..2].iter().all(|r| r.state == "live"));
    assert!(
        records[2..].iter().all(|r| r.state == "degraded"),
        "3 consecutive blind epochs must degrade the service"
    );
    // Degraded epochs hold the last-good (initial) runtime: the staged
    // partition never moves while degraded.
    let held: Vec<_> = records[2..].iter().map(|r| (r.m_hh, r.m_hl, r.m_ll)).collect();
    assert!(held.windows(2).all(|w| w[0] == w[1]));
    assert_eq!(rt.state(), ServeState::Degraded);

    // Faults clear (a fresh runtime with a clean plan, restored from the
    // degraded snapshot): healthy decodes accumulate and service resumes.
    let snap = rt.snapshot();
    let mut healed = ServeRuntime::new(ServeConfig::new(
        scenario(13),
        FaultPlan::none(13),
    ));
    healed.restore(&snap);
    let after = run_epochs(&mut healed, 4);
    assert_eq!(after[0].state, "degraded", "recovery needs consecutive proof");
    assert_eq!(healed.state(), ServeState::Live, "service must self-heal");
    // The strictly-growing discipline: the next episode demands more.
    assert!(healed.recovery_needed() > 2);
}

#[test]
fn bounded_inbox_applies_backpressure() {
    let mut cfg = ServeConfig::new(scenario(17), FaultPlan::none(17));
    cfg.inbox_capacity = Some(2); // topology has 4 edges
    let mut rt = ServeRuntime::new(cfg);
    let records = run_epochs(&mut rt, 6);
    assert!(records.iter().all(|r| r.backpressure_drops == 2));
    // Partial collections are survivable: never blind, never panicking.
    assert!(records.iter().all(|r| !r.blind));
}

#[test]
fn rebooted_switches_report_empty_not_missing() {
    // Reboot everything every epoch: reports all arrive but carry nothing.
    let cfg = ServeConfig::new(
        scenario(19),
        FaultPlan { reboot: 1.0, ..FaultPlan::none(19) },
    );
    let mut rt = ServeRuntime::new(cfg);
    let records = run_epochs(&mut rt, 4);
    assert!(records.iter().all(|r| r.reboots == 4 && r.delivered == 4));
    // All-empty reports are a *decoded* collection of nothing — the epoch
    // is not blind (reports arrived), and nothing is detected.
    assert!(records.iter().all(|r| !r.blind));
    assert!(records.iter().all(|r| r.reported_victims == 0));
}

#[test]
fn clock_stall_yields_null_latency_not_zero() {
    let cfg = ServeConfig::new(
        scenario(23),
        FaultPlan { clock_stall: 1.0, ..FaultPlan::none(23) },
    );
    let mut rt = ServeRuntime::new(cfg);
    for _ in 0..3 {
        let r = rt.step();
        assert!(r.clock_stalled);
        assert_eq!(r.reaction_ms, None);
        assert!(r.to_jsonl().contains("\"reaction_ms\":null"));
    }
    // And with a working clock the model reports a positive latency.
    let mut rt = ServeRuntime::new(ServeConfig::new(scenario(23), FaultPlan::none(23)));
    let r = rt.step();
    assert!(r.reaction_ms.expect("clock is fine") > 0.0);
}

#[test]
fn delayed_reports_pay_backoff_latency() {
    let cfg = ServeConfig::new(
        scenario(29),
        FaultPlan {
            report_delay: 1.0,
            delay_retries_max: 3,
            max_retries: 3,
            ..FaultPlan::none(29)
        },
    );
    let mut rt = ServeRuntime::new(cfg);
    let delayed = rt.step();
    let mut rt = ServeRuntime::new(ServeConfig::new(scenario(29), FaultPlan::none(29)));
    let clean = rt.step();
    assert!(
        delayed.reaction_ms.expect("measured") > clean.reaction_ms.expect("measured"),
        "retry backoff must show up in the reaction latency"
    );
    assert_eq!(delayed.delayed, 4);
}
