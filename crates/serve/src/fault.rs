//! **Deterministic fault injection** for the streaming runtime.
//!
//! A [`FaultPlan`] is a seeded description of how the control plane
//! misbehaves; [`FaultPlan::realize`] expands it into the concrete
//! [`EpochFaults`] of one epoch as a pure function of `(seed, epoch)` —
//! the same discipline every other stochastic layer in this repo follows
//! (cf. `Scenario::reports_received`). Re-running an epoch, restoring from
//! a snapshot, or replaying the whole stream realizes the *same* faults,
//! which is what makes the crash/restore byte-identity property testable
//! at all.
//!
//! The fault taxonomy covers the control-plane failure modes §4.3's
//! collection loop has to survive:
//!
//! * **report loss** — a switch's sketch report never reaches the
//!   controller (already modeled by scenarios; here it composes with the
//!   rest);
//! * **report delay** — the report arrives only after `k` retries of the
//!   collection RPC; the runtime pays a deterministic jittered-backoff
//!   latency and, past [`FaultPlan::max_retries`], gives the report up
//!   (it becomes a timeout = loss);
//! * **report duplication** — the report arrives twice (retry raced the
//!   original); the runtime must deduplicate, not double-count;
//! * **switch reboot** — the switch restarts mid-epoch, clearing both
//!   sketch groups; it dutifully reports an *empty* group, which is a
//!   different (and nastier) failure than a missing report;
//! * **controller pause** — the controller misses the whole collection
//!   window (GC pause, failover); every report of that epoch perishes
//!   (sketch telemetry is only meaningful within its epoch);
//! * **clock stall** — the controller's latency clock is unreliable this
//!   epoch; reaction time must be reported as *unmeasured*, never `0.0`.

use chm_common::hash::mix64;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Domain-separation salt for per-epoch fault realization.
const FAULT_SALT: u64 = 0xfa_017;

/// What happens to one switch's report in one epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReportFate {
    /// Arrives in the collection window, first try.
    Delivered,
    /// Never arrives.
    Lost,
    /// Arrives after `k ≥ 1` retries of the collection RPC (a timeout if
    /// `k` exceeds the plan's retry budget).
    Delayed(u32),
    /// Arrives twice; the second copy must be deduplicated.
    Duplicated,
}

/// The realized faults of one epoch. Produced by [`FaultPlan::realize`];
/// consumed by the runtime's collection step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochFaults {
    /// Per-switch report fate, in edge-index order.
    pub fates: Vec<ReportFate>,
    /// Per-switch: did the switch reboot this epoch (clearing its sketch
    /// state, so its report is empty)?
    pub rebooted: Vec<bool>,
    /// Controller missed the collection window entirely.
    pub controller_paused: bool,
    /// Latency clock unreliable this epoch.
    pub clock_stalled: bool,
}

impl EpochFaults {
    /// A fault-free epoch over `n_edges` switches.
    pub fn clean(n_edges: usize) -> Self {
        EpochFaults {
            fates: vec![ReportFate::Delivered; n_edges],
            rebooted: vec![false; n_edges],
            controller_paused: false,
            clock_stalled: false,
        }
    }
}

/// A seeded, per-epoch-independent fault model for the whole stream.
///
/// All probabilities are per epoch (pause/stall) or per switch per epoch
/// (loss, delay, duplication, reboot). Loss, delay, and duplication are
/// mutually exclusive per report — they are drawn from one roll in that
/// priority order — so the probabilities must sum to ≤ 1.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Master seed; every realization derives from it.
    pub seed: u64,
    /// P(report lost) per switch per epoch.
    pub report_loss: f64,
    /// P(report delayed) per switch per epoch.
    pub report_delay: f64,
    /// P(report duplicated) per switch per epoch.
    pub report_dup: f64,
    /// Retries a delayed report may take before arriving, drawn uniformly
    /// from `1..=delay_retries_max`.
    pub delay_retries_max: u32,
    /// Retry budget: a delay beyond this many retries is a timeout and the
    /// report counts as lost.
    pub max_retries: u32,
    /// P(switch reboots) per switch per epoch.
    pub reboot: f64,
    /// P(controller pauses) per epoch.
    pub pause: f64,
    /// P(latency clock stalls) per epoch.
    pub clock_stall: f64,
}

impl FaultPlan {
    /// No faults at all (the control plane of the scenario engine).
    pub fn none(seed: u64) -> Self {
        FaultPlan {
            seed,
            report_loss: 0.0,
            report_delay: 0.0,
            report_dup: 0.0,
            delay_retries_max: 0,
            max_retries: 3,
            reboot: 0.0,
            pause: 0.0,
            clock_stall: 0.0,
        }
    }

    /// The default service-mode fault mix: occasional report loss and
    /// delay, rare duplicates, reboots, pauses, and clock stalls — enough
    /// to exercise every recovery path over a few hundred epochs without
    /// drowning the signal.
    pub fn standard(seed: u64) -> Self {
        FaultPlan {
            seed,
            report_loss: 0.03,
            report_delay: 0.08,
            report_dup: 0.02,
            delay_retries_max: 4,
            max_retries: 3,
            reboot: 0.01,
            pause: 0.02,
            clock_stall: 0.02,
        }
    }

    /// A hostile control plane: heavy loss/delay, frequent pauses — the
    /// watchdog's degraded mode does real work here.
    pub fn stress(seed: u64) -> Self {
        FaultPlan {
            seed,
            report_loss: 0.15,
            report_delay: 0.20,
            report_dup: 0.05,
            delay_retries_max: 6,
            max_retries: 3,
            reboot: 0.03,
            pause: 0.10,
            clock_stall: 0.05,
        }
    }

    /// Realizes this plan for one epoch over `n_edges` switches — pure in
    /// `(self.seed, epoch)`: calling twice returns identical faults, and
    /// realizations of different epochs are independent.
    pub fn realize(&self, epoch: u64, n_edges: usize) -> EpochFaults {
        let mut rng =
            StdRng::seed_from_u64(mix64(self.seed ^ FAULT_SALT).wrapping_add(epoch));
        let mut fates = Vec::with_capacity(n_edges);
        let mut rebooted = Vec::with_capacity(n_edges);
        for _ in 0..n_edges {
            // One roll decides the fate so the categories stay mutually
            // exclusive and the stream position advances identically for
            // every probability setting of the same shape.
            let roll: f64 = rng.gen_range(0.0..1.0);
            let fate = if roll < self.report_loss {
                ReportFate::Lost
            } else if roll < self.report_loss + self.report_delay {
                let k = if self.delay_retries_max <= 1 {
                    1
                } else {
                    rng.gen_range(1..=self.delay_retries_max)
                };
                ReportFate::Delayed(k)
            } else if roll < self.report_loss + self.report_delay + self.report_dup {
                ReportFate::Duplicated
            } else {
                ReportFate::Delivered
            };
            fates.push(fate);
            rebooted.push(rng.gen_bool(self.reboot));
        }
        EpochFaults {
            fates,
            rebooted,
            controller_paused: rng.gen_bool(self.pause),
            clock_stalled: rng.gen_bool(self.clock_stall),
        }
    }

    /// The deterministic virtual latency (milliseconds) a report that
    /// arrived after `retries` retries cost the collection window:
    /// exponential backoff `base · 2^i` per attempt plus a per-attempt
    /// jitter fraction derived by hashing — no RNG stream consumed, so
    /// latency modeling never perturbs fault realization.
    pub fn backoff_ms(&self, epoch: u64, edge: usize, retries: u32) -> f64 {
        const BASE_MS: f64 = 5.0;
        let mut total = 0.0;
        for i in 0..retries {
            let h = mix64(
                self.seed ^ 0xbac0ff ^ (epoch << 20) ^ ((edge as u64) << 8) ^ i as u64,
            );
            // Jitter in [0, 1): top 53 bits as a fraction.
            let jitter = (h >> 11) as f64 / (1u64 << 53) as f64;
            total += BASE_MS * f64::from(1u32 << i.min(10)) * (1.0 + jitter);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn realization_is_pure_in_seed_and_epoch() {
        let p = FaultPlan::standard(42);
        for epoch in [0u64, 1, 7, 1_000_003] {
            assert_eq!(p.realize(epoch, 4), p.realize(epoch, 4));
        }
        // Different epochs must not share a realization stream.
        let all_same = (0..32).all(|e| p.realize(e, 4) == p.realize(0, 4));
        assert!(!all_same, "fault realizations are epoch-invariant");
    }

    #[test]
    fn none_plan_is_always_clean() {
        let p = FaultPlan::none(9);
        for epoch in 0..64 {
            assert_eq!(p.realize(epoch, 6), EpochFaults::clean(6));
        }
    }

    #[test]
    fn fate_priority_respects_probabilities() {
        // All mass on loss: every report lost.
        let p = FaultPlan { report_loss: 1.0, ..FaultPlan::none(3) };
        let f = p.realize(5, 8);
        assert!(f.fates.iter().all(|&x| x == ReportFate::Lost));
        // All mass on delay: every report delayed with 1 ≤ k ≤ max.
        let p = FaultPlan {
            report_delay: 1.0,
            delay_retries_max: 4,
            ..FaultPlan::none(3)
        };
        for fate in p.realize(5, 8).fates {
            match fate {
                ReportFate::Delayed(k) => assert!((1..=4).contains(&k)),
                other => panic!("expected delay, got {other:?}"),
            }
        }
    }

    #[test]
    fn backoff_is_deterministic_and_monotone_in_retries() {
        let p = FaultPlan::standard(1);
        assert_eq!(p.backoff_ms(3, 1, 2), p.backoff_ms(3, 1, 2));
        assert_eq!(p.backoff_ms(3, 1, 0), 0.0);
        let mut prev = 0.0;
        for k in 1..6 {
            let b = p.backoff_ms(3, 1, k);
            assert!(b > prev, "backoff must grow with retries");
            prev = b;
        }
    }
}
