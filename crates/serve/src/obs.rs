//! The serve runtime's telemetry surface: a [`chm_obs::Registry`] of
//! service counters/gauges/histograms plus the per-epoch span tree, all
//! fed from each [`EpochRecord`].
//!
//! Determinism: everything here derives from the deterministic epoch
//! records and the zero-clock span profiler, so both exposition formats
//! are byte-identical across runs, shard layouts, and kill/restore — with
//! one deliberate exception: telemetry is **process-lifetime** state (a
//! restarted process starts its counters at zero, exactly like a
//! restarted Prometheus target) and is therefore *not* part of
//! [`ServeSnapshot`][crate::snapshot::ServeSnapshot].

use chm_obs::{render_json_metrics, render_prometheus, MetricId, Registry, SpanProfiler};

use crate::metrics::EpochRecord;

/// Upper bounds (seconds) for the reaction-latency histogram. The virtual
/// latency model tops out around `base + per_report·edges + backoff`, so
/// these buckets spread the realistic 2–60 ms range.
const REACTION_BUCKETS: [f64; 8] = [0.002, 0.004, 0.008, 0.016, 0.032, 0.064, 0.128, 0.256];

/// Static handles into the serve registry (registered once at startup).
#[derive(Debug, Clone, Copy)]
struct Ids {
    epochs: MetricId,
    blind_epochs: MetricId,
    degraded_epochs: MetricId,
    paused_epochs: MetricId,
    clock_stall_epochs: MetricId,
    decode_failure_epochs: MetricId,
    packets: MetricId,
    reports_delivered: MetricId,
    reports_lost: MetricId,
    reports_delayed: MetricId,
    reports_timed_out: MetricId,
    report_duplicates: MetricId,
    backpressure_drops: MetricId,
    switch_reboots: MetricId,
    f1: MetricId,
    loc_top3: MetricId,
    sample_rate: MetricId,
    staged_hh: MetricId,
    staged_hl: MetricId,
    staged_ll: MetricId,
    reaction: MetricId,
}

/// The serve runtime's observability state: metric registry + span tree.
#[derive(Debug, Clone)]
pub struct ServeObs {
    registry: Registry,
    /// The live span tree. [`ServeRuntime::step`][crate::runtime::ServeRuntime::step]
    /// opens an `epoch` span per epoch (under the zero clock — durations
    /// stay 0.0; counts accumulate) and the controller's profiled entry
    /// points record `analyze/decode/*` and `localize` below it.
    pub spans: SpanProfiler,
    ids: Ids,
}

impl Default for ServeObs {
    fn default() -> Self {
        Self::new()
    }
}

impl ServeObs {
    pub fn new() -> Self {
        let mut r = Registry::new();
        let c = |r: &mut Registry, name: &str, help: &str| r.register_counter(name, help, &[]);
        let g = |r: &mut Registry, name: &str, help: &str| r.register_gauge(name, help, &[]);
        let ids = Ids {
            epochs: c(&mut r, "chm_serve_epochs_total", "Epochs served."),
            blind_epochs: c(
                &mut r,
                "chm_serve_blind_epochs_total",
                "Epochs where zero reports were analyzed.",
            ),
            degraded_epochs: c(
                &mut r,
                "chm_serve_degraded_epochs_total",
                "Epochs decided in watchdog-degraded mode.",
            ),
            paused_epochs: c(
                &mut r,
                "chm_serve_paused_epochs_total",
                "Epochs where the controller missed the collection window.",
            ),
            clock_stall_epochs: c(
                &mut r,
                "chm_serve_clock_stall_epochs_total",
                "Epochs with an unreliable latency clock.",
            ),
            decode_failure_epochs: c(
                &mut r,
                "chm_serve_decode_failure_epochs_total",
                "Epochs where some deployed encoder failed to decode.",
            ),
            packets: c(&mut r, "chm_serve_packets_total", "Packets the fabric carried."),
            reports_delivered: c(
                &mut r,
                "chm_serve_reports_delivered_total",
                "Switch reports that arrived on the first try.",
            ),
            reports_lost: c(&mut r, "chm_serve_reports_lost_total", "Switch reports lost outright."),
            reports_delayed: c(
                &mut r,
                "chm_serve_reports_delayed_total",
                "Switch reports that arrived late within the retry budget.",
            ),
            reports_timed_out: c(
                &mut r,
                "chm_serve_reports_timed_out_total",
                "Switch reports that exceeded the retry budget.",
            ),
            report_duplicates: c(
                &mut r,
                "chm_serve_report_duplicates_total",
                "Duplicate report copies discarded by dedup.",
            ),
            backpressure_drops: c(
                &mut r,
                "chm_serve_backpressure_drops_total",
                "Reports dropped by the bounded collection inbox.",
            ),
            switch_reboots: c(
                &mut r,
                "chm_serve_switch_reboots_total",
                "Switch reboots (empty report groups).",
            ),
            f1: g(&mut r, "chm_serve_f1_ratio", "Victim-detection F1 of the latest epoch."),
            loc_top3: g(
                &mut r,
                "chm_serve_loc_top3_ratio",
                "Top-3 localization hit rate of the latest epoch.",
            ),
            sample_rate: g(
                &mut r,
                "chm_serve_sample_rate_ratio",
                "Staged LL sample rate of the latest epoch.",
            ),
            staged_hh: g(
                &mut r,
                "chm_serve_staged_hh_buckets_count",
                "Staged HH encoder buckets per array.",
            ),
            staged_hl: g(
                &mut r,
                "chm_serve_staged_hl_buckets_count",
                "Staged HL encoder buckets per array.",
            ),
            staged_ll: g(
                &mut r,
                "chm_serve_staged_ll_buckets_count",
                "Staged LL encoder buckets per array.",
            ),
            reaction: r.register_histogram(
                "chm_serve_reaction_seconds",
                "Virtual controller reaction latency (collection + retry backoff).",
                &[],
                &REACTION_BUCKETS,
            ),
        };
        ServeObs { registry: r, spans: SpanProfiler::new(), ids }
    }

    /// Folds one epoch's record into the registry (counters accumulate,
    /// gauges track the latest epoch, the reaction histogram observes
    /// each measurable epoch once).
    pub fn observe_epoch(&mut self, rec: &EpochRecord) {
        let ids = self.ids;
        let r = &mut self.registry;
        r.inc(ids.epochs);
        if rec.blind {
            r.inc(ids.blind_epochs);
        }
        if rec.state == "degraded" {
            r.inc(ids.degraded_epochs);
        }
        if rec.paused {
            r.inc(ids.paused_epochs);
        }
        if rec.clock_stalled {
            r.inc(ids.clock_stall_epochs);
        }
        if !rec.decode_ok {
            r.inc(ids.decode_failure_epochs);
        }
        r.add(ids.packets, rec.packets);
        r.add(ids.reports_delivered, u64::from(rec.delivered));
        r.add(ids.reports_lost, u64::from(rec.lost));
        r.add(ids.reports_delayed, u64::from(rec.delayed));
        r.add(ids.reports_timed_out, u64::from(rec.timed_out));
        r.add(ids.report_duplicates, u64::from(rec.duplicates));
        r.add(ids.backpressure_drops, u64::from(rec.backpressure_drops));
        r.add(ids.switch_reboots, u64::from(rec.reboots));
        r.set(ids.f1, rec.f1);
        r.set(ids.loc_top3, rec.loc_top3);
        r.set(ids.sample_rate, rec.sample_rate);
        r.set(ids.staged_hh, rec.m_hh as f64);
        r.set(ids.staged_hl, rec.m_hl as f64);
        r.set(ids.staged_ll, rec.m_ll as f64);
        if let Some(ms) = rec.reaction_ms {
            r.observe(ids.reaction, ms / 1e3);
        }
    }

    /// The registry (read-only; exposition and tests).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Current Prometheus text-format 0.0.4 snapshot of the registry.
    pub fn prom_snapshot(&self) -> String {
        render_prometheus(&self.registry)
    }

    /// One JSONL trace line: the epoch number, the flat metrics object,
    /// and the cumulative span tree — the `--metrics-out` sink's format.
    pub fn jsonl_line(&self, epoch: u64) -> String {
        format!(
            "{{\"epoch\":{epoch},\"metrics\":{},\"spans\":{}}}",
            render_json_metrics(&self.registry),
            self.spans.json_object()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(epoch: u64) -> EpochRecord {
        EpochRecord {
            epoch,
            state: if epoch.is_multiple_of(2) { "live" } else { "degraded" },
            blind: epoch == 1,
            decode_ok: epoch != 1,
            delivered: 4,
            lost: 1,
            delayed: 1,
            timed_out: 0,
            duplicates: 1,
            backpressure_drops: 0,
            reboots: 1,
            paused: false,
            clock_stalled: epoch == 2,
            packets: 1000 + epoch,
            true_victims: 3,
            reported_victims: 3,
            precision: 1.0,
            recall: 1.0,
            f1: 1.0,
            loc_top1: 0.5,
            loc_top3: 1.0,
            m_hh: 32,
            m_hl: 64,
            m_ll: 16,
            sample_rate: 0.25,
            reaction_ms: if epoch == 2 { None } else { Some(3.5) },
        }
    }

    #[test]
    fn epoch_records_accumulate_deterministically() {
        let run = || {
            let mut obs = ServeObs::new();
            for e in 0..4 {
                obs.observe_epoch(&record(e));
            }
            (obs.prom_snapshot(), obs.jsonl_line(3))
        };
        assert_eq!(run(), run());
        let (prom, line) = run();
        assert!(prom.contains("chm_serve_epochs_total 4"));
        assert!(prom.contains("chm_serve_degraded_epochs_total 2"));
        assert!(prom.contains("chm_serve_clock_stall_epochs_total 1"));
        // 4 epochs, one clock-stalled → 3 reaction observations.
        assert!(prom.contains("chm_serve_reaction_seconds_count 3"));
        assert!(prom.contains("chm_serve_reaction_seconds_bucket{le=\"+Inf\"} 3"));
        assert!(line.starts_with("{\"epoch\":3,\"metrics\":{"));
        assert!(line.contains("\"chm_serve_f1_ratio\":1"));
    }
}
