//! **Crash-consistent snapshots** of the streaming runtime.
//!
//! A [`ServeSnapshot`] captures the runtime's entire evolving decision
//! state at an epoch boundary: the stream position, the controller's
//! decision state (deployed runtime, network-state belief, failed-HL
//! blocklist, localizer EWMA tables), the watchdog, and the last-known-
//! good runtime the degraded mode falls back to. Everything else — edge
//! sketch state (empty at every boundary), the fault plan, the scenario —
//! is either reconstructible from static configuration or pure in
//! `(seed, epoch)`, so it deliberately stays out of the snapshot.
//!
//! The text encoding is built for *exactness*, not prettiness: every
//! `f64` is serialized as the hex of its IEEE-754 bit pattern, so a
//! snapshot round-trip is bit-identical — the crash/restore property
//! (`tests/service.rs`) asserts byte-equal metrics streams, and one ULP
//! of drift in a localizer EWMA would eventually flip a ranking.

use chamelemon::control::ControllerSnapshot;
use chamelemon::localize::LocalizerSnapshot;
use chamelemon::{NetworkState, Partition, RuntimeConfig};
use chm_netsim::{SwitchId, SwitchRole};

use crate::watchdog::WatchdogSnapshot;

/// Format marker; bump on incompatible changes.
const HEADER: &str = "chm-serve-snapshot v1";

/// The runtime's full evolving state at an epoch boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeSnapshot {
    /// Next epoch to serve (everything before it is fully processed).
    pub epoch: u64,
    /// The controller's decision state.
    pub controller: ControllerSnapshot,
    /// The watchdog's stall/recovery state.
    pub watchdog: WatchdogSnapshot,
    /// Last runtime staged from a healthy decode — the degraded hold.
    pub last_good: RuntimeConfig,
}

fn fmt_f64(x: f64) -> String {
    format!("{:016x}", x.to_bits())
}

fn parse_f64(s: &str) -> Result<f64, String> {
    u64::from_str_radix(s, 16)
        .map(f64::from_bits)
        .map_err(|e| format!("bad f64 bits {s:?}: {e}"))
}

fn parse_num<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("bad {what}: {s:?}"))
}

fn fmt_runtime(rt: &RuntimeConfig) -> String {
    format!(
        "{} {} {} {} {} {}",
        rt.partition.m_hh, rt.partition.m_hl, rt.partition.m_ll, rt.th, rt.tl, rt.sample_threshold
    )
}

fn parse_runtime(fields: &[&str]) -> Result<RuntimeConfig, String> {
    if fields.len() != 6 {
        return Err(format!("runtime needs 6 fields, got {}", fields.len()));
    }
    Ok(RuntimeConfig {
        partition: Partition {
            m_hh: parse_num(fields[0], "m_hh")?,
            m_hl: parse_num(fields[1], "m_hl")?,
            m_ll: parse_num(fields[2], "m_ll")?,
        },
        th: parse_num(fields[3], "th")?,
        tl: parse_num(fields[4], "tl")?,
        sample_threshold: parse_num(fields[5], "sample_threshold")?,
    })
}

fn fmt_switch_table(table: &[(SwitchId, f64)]) -> String {
    table
        .iter()
        .map(|(s, v)| format!("{}:{}:{}", s.role.label(), s.index, fmt_f64(*v)))
        .collect::<Vec<_>>()
        .join(" ")
}

fn parse_switch_table(fields: &[&str]) -> Result<Vec<(SwitchId, f64)>, String> {
    fields
        .iter()
        .map(|f| {
            let mut parts = f.split(':');
            let (Some(role), Some(index), Some(bits), None) =
                (parts.next(), parts.next(), parts.next(), parts.next())
            else {
                return Err(format!("bad table entry {f:?}"));
            };
            let role = match role {
                "edge" => SwitchRole::Edge,
                "agg" => SwitchRole::Aggregation,
                "core" => SwitchRole::Core,
                other => return Err(format!("bad switch role {other:?}")),
            };
            Ok((
                SwitchId { role, index: parse_num(index, "switch index")? },
                parse_f64(bits)?,
            ))
        })
        .collect()
}

impl ServeSnapshot {
    /// Serializes to the line-oriented text format. Infallible; the result
    /// always [`parse`](Self::parse)s back to an equal snapshot.
    pub fn serialize(&self) -> String {
        let mut out = String::new();
        out.push_str(HEADER);
        out.push('\n');
        out.push_str(&format!("epoch {}\n", self.epoch));
        let state = match self.controller.state {
            NetworkState::Healthy => "healthy",
            NetworkState::Ill => "ill",
        };
        out.push_str(&format!("state {state}\n"));
        out.push_str(&format!("deployed {}\n", fmt_runtime(&self.controller.deployed)));
        out.push_str(&format!("last_good {}\n", fmt_runtime(&self.last_good)));
        let failed: Vec<String> =
            self.controller.failed_hl_sizes.iter().map(|s| s.to_string()).collect();
        out.push_str(&format!("failed_hl {}\n", failed.join(" ")));
        let w = &self.watchdog;
        out.push_str(&format!(
            "watchdog {} {} {} {}\n",
            u8::from(w.degraded),
            w.consecutive_bad,
            w.consecutive_good,
            w.recovery_needed
        ));
        if let Some(l) = &self.controller.localizer {
            out.push_str(&format!("localizer_decay {}\n", fmt_f64(l.decay)));
            out.push_str(&format!("blame {}\n", fmt_switch_table(&l.blame)));
            out.push_str(&format!("transit {}\n", fmt_switch_table(&l.transit)));
            out.push_str(&format!("telemetry {}\n", fmt_switch_table(&l.telemetry)));
        }
        out.push_str("end\n");
        out
    }

    /// Parses the text format back into a snapshot.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut lines = text.lines();
        if lines.next() != Some(HEADER) {
            return Err(format!("missing header {HEADER:?}"));
        }
        let mut epoch = None;
        let mut state = None;
        let mut deployed = None;
        let mut last_good = None;
        let mut failed_hl = Vec::new();
        let mut watchdog = None;
        let mut decay = None;
        let mut blame = None;
        let mut transit = None;
        let mut telemetry = None;
        let mut saw_end = false;
        for line in lines {
            let fields: Vec<&str> = line.split_whitespace().collect();
            let Some((&key, rest)) = fields.split_first() else { continue };
            match key {
                "epoch" => epoch = Some(parse_num::<u64>(rest.first().unwrap_or(&""), "epoch")?),
                "state" => {
                    state = Some(match rest.first() {
                        Some(&"healthy") => NetworkState::Healthy,
                        Some(&"ill") => NetworkState::Ill,
                        other => return Err(format!("bad state {other:?}")),
                    })
                }
                "deployed" => deployed = Some(parse_runtime(rest)?),
                "last_good" => last_good = Some(parse_runtime(rest)?),
                "failed_hl" => {
                    failed_hl = rest
                        .iter()
                        .map(|s| parse_num::<usize>(s, "failed HL size"))
                        .collect::<Result<_, _>>()?
                }
                "watchdog" => {
                    if rest.len() != 4 {
                        return Err("watchdog needs 4 fields".to_string());
                    }
                    watchdog = Some(WatchdogSnapshot {
                        degraded: rest[0] == "1",
                        consecutive_bad: parse_num(rest[1], "consecutive_bad")?,
                        consecutive_good: parse_num(rest[2], "consecutive_good")?,
                        recovery_needed: parse_num(rest[3], "recovery_needed")?,
                    });
                }
                "localizer_decay" => {
                    decay = Some(parse_f64(rest.first().unwrap_or(&""))?)
                }
                "blame" => blame = Some(parse_switch_table(rest)?),
                "transit" => transit = Some(parse_switch_table(rest)?),
                "telemetry" => telemetry = Some(parse_switch_table(rest)?),
                "end" => {
                    saw_end = true;
                    break;
                }
                other => return Err(format!("unknown snapshot key {other:?}")),
            }
        }
        if !saw_end {
            return Err("truncated snapshot: no end marker".to_string());
        }
        let localizer = match (decay, blame, transit, telemetry) {
            (Some(decay), Some(blame), Some(transit), Some(telemetry)) => {
                Some(LocalizerSnapshot { blame, transit, telemetry, decay })
            }
            (None, None, None, None) => None,
            _ => return Err("partial localizer tables in snapshot".to_string()),
        };
        Ok(ServeSnapshot {
            epoch: epoch.ok_or("missing epoch")?,
            controller: ControllerSnapshot {
                deployed: deployed.ok_or("missing deployed runtime")?,
                state: state.ok_or("missing state")?,
                failed_hl_sizes: failed_hl,
                localizer,
            },
            watchdog: watchdog.ok_or("missing watchdog state")?,
            last_good: last_good.ok_or("missing last_good runtime")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ServeSnapshot {
        let rt = RuntimeConfig {
            partition: Partition { m_hh: 448, m_hl: 64, m_ll: 0 },
            th: 9,
            tl: 1,
            sample_threshold: 65_536,
        };
        let e0 = SwitchId { role: SwitchRole::Edge, index: 0 };
        let c1 = SwitchId { role: SwitchRole::Core, index: 1 };
        ServeSnapshot {
            epoch: 17,
            controller: ControllerSnapshot {
                deployed: rt,
                state: NetworkState::Ill,
                failed_hl_sizes: vec![320, 480],
                localizer: Some(LocalizerSnapshot {
                    blame: vec![(e0, 1.25), (c1, 0.1 + 0.2)],
                    transit: vec![(c1, 1e-300)],
                    telemetry: vec![],
                    decay: 0.5,
                }),
            },
            watchdog: WatchdogSnapshot {
                degraded: true,
                consecutive_bad: 3,
                consecutive_good: 1,
                recovery_needed: 4,
            },
            last_good: rt,
        }
    }

    #[test]
    fn serialize_parse_is_bit_exact() {
        let snap = sample();
        let text = snap.serialize();
        let back = ServeSnapshot::parse(&text).expect("round trip parses");
        assert_eq!(back, snap);
        // Exactness includes awkward floats: 0.1 + 0.2 and subnormals
        // survive because the encoding is the raw bit pattern.
        assert_eq!(back.serialize(), text);
    }

    #[test]
    fn no_localizer_round_trips_too() {
        let mut snap = sample();
        snap.controller.localizer = None;
        let back = ServeSnapshot::parse(&snap.serialize()).expect("parses");
        assert_eq!(back, snap);
    }

    #[test]
    fn corrupt_snapshots_are_rejected() {
        assert!(ServeSnapshot::parse("").is_err());
        assert!(ServeSnapshot::parse("chm-serve-snapshot v1\nepoch 3\n").is_err());
        let truncated = sample().serialize().replace("end\n", "");
        assert!(ServeSnapshot::parse(&truncated).is_err());
        let bad_key = sample().serialize().replace("watchdog", "watchcat");
        assert!(ServeSnapshot::parse(&bad_key).is_err());
    }
}
