//! **Decode-stall watchdog** — the self-healing half of the runtime.
//!
//! The controller's epoch loop can go bad two ways: collections stop
//! arriving (pauses, report loss) or they arrive but stop decoding
//! (sketch overload after a reboot storm, pathological workload). Either
//! way the analyses it produces are garbage, and *acting* on garbage —
//! resizing encoders off a failed decode, thrashing thresholds — makes the
//! next epoch worse. The watchdog watches for a run of bad epochs and
//! flips the runtime into **degraded** mode: hold the last-known-good
//! configuration steady, mark every epoch blind, and wait for the decode
//! pipeline to prove itself healthy again before handing back control.
//!
//! Recovery is deliberately pessimistic, borrowing the strictly-growing
//! discipline of the controller's failed-HL-size blocklist: each
//! degradation episode raises the number of consecutive healthy decodes
//! required to re-enter live mode. A flapping fault pattern therefore
//! converges to long stable holds instead of oscillating — the same
//! "never retry a configuration that just failed" instinct, applied to
//! the control loop itself.

/// The runtime's serving state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeState {
    /// Decodes are healthy; the controller reconfigures freely.
    Live,
    /// Decodes are stalled; the last-known-good configuration is held.
    Degraded,
}

impl ServeState {
    /// Stable label for metrics streams.
    pub fn label(self) -> &'static str {
        match self {
            ServeState::Live => "live",
            ServeState::Degraded => "degraded",
        }
    }
}

/// Serializable watchdog state — everything [`Watchdog`] needs to resume
/// bit-identically after a restore.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WatchdogSnapshot {
    /// Current serving state.
    pub degraded: bool,
    /// Consecutive bad epochs observed (resets on any good epoch).
    pub consecutive_bad: u32,
    /// Consecutive good epochs observed while degraded.
    pub consecutive_good: u32,
    /// Healthy decodes currently required to leave degraded mode.
    pub recovery_needed: u32,
}

/// The watchdog state machine. Feed it one verdict per epoch via
/// [`observe`](Watchdog::observe); read the resulting state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Watchdog {
    /// Bad epochs in a row that trigger degradation.
    stall_threshold: u32,
    /// Recovery requirement of the *first* episode; later episodes grow it.
    base_recovery: u32,
    state: ServeState,
    consecutive_bad: u32,
    consecutive_good: u32,
    recovery_needed: u32,
}

impl Watchdog {
    /// A live watchdog degrading after `stall_threshold` consecutive bad
    /// epochs and initially requiring `base_recovery` consecutive healthy
    /// decodes to recover. Both are clamped to ≥ 1.
    pub fn new(stall_threshold: u32, base_recovery: u32) -> Self {
        let base = base_recovery.max(1);
        Watchdog {
            stall_threshold: stall_threshold.max(1),
            base_recovery: base,
            state: ServeState::Live,
            consecutive_bad: 0,
            consecutive_good: 0,
            recovery_needed: base,
        }
    }

    /// Current serving state.
    pub fn state(&self) -> ServeState {
        self.state
    }

    /// Healthy decodes currently required to leave degraded mode. Strictly
    /// grows across degradation episodes.
    pub fn recovery_needed(&self) -> u32 {
        self.recovery_needed
    }

    /// Records one epoch's verdict (`healthy` = the controller produced a
    /// usable decode this epoch) and returns the state in effect *after*
    /// the observation — i.e. the state the next epoch starts in.
    pub fn observe(&mut self, healthy: bool) -> ServeState {
        match self.state {
            ServeState::Live => {
                if healthy {
                    self.consecutive_bad = 0;
                } else {
                    self.consecutive_bad += 1;
                    if self.consecutive_bad >= self.stall_threshold {
                        // Degrade; the *next* recovery will demand more
                        // than this one did (strict growth).
                        self.state = ServeState::Degraded;
                        self.consecutive_good = 0;
                    }
                }
            }
            ServeState::Degraded => {
                if healthy {
                    self.consecutive_good += 1;
                    if self.consecutive_good >= self.recovery_needed {
                        self.state = ServeState::Live;
                        self.consecutive_bad = 0;
                        self.consecutive_good = 0;
                        self.recovery_needed += self.base_recovery;
                    }
                } else {
                    self.consecutive_good = 0;
                }
            }
        }
        self.state
    }

    /// Exports the evolving state for persistence.
    pub fn snapshot(&self) -> WatchdogSnapshot {
        WatchdogSnapshot {
            degraded: self.state == ServeState::Degraded,
            consecutive_bad: self.consecutive_bad,
            consecutive_good: self.consecutive_good,
            recovery_needed: self.recovery_needed,
        }
    }

    /// Restores a snapshot onto a watchdog built with the same thresholds.
    pub fn restore(&mut self, snap: &WatchdogSnapshot) {
        self.state = if snap.degraded {
            ServeState::Degraded
        } else {
            ServeState::Live
        };
        self.consecutive_bad = snap.consecutive_bad;
        self.consecutive_good = snap.consecutive_good;
        self.recovery_needed = snap.recovery_needed.max(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degrades_after_threshold_and_recovers() {
        let mut w = Watchdog::new(3, 2);
        assert_eq!(w.observe(false), ServeState::Live);
        assert_eq!(w.observe(false), ServeState::Live);
        assert_eq!(w.observe(false), ServeState::Degraded);
        // One healthy decode is not enough (base_recovery = 2).
        assert_eq!(w.observe(true), ServeState::Degraded);
        assert_eq!(w.observe(true), ServeState::Live);
    }

    #[test]
    fn a_good_epoch_resets_the_stall_count() {
        let mut w = Watchdog::new(2, 1);
        assert_eq!(w.observe(false), ServeState::Live);
        assert_eq!(w.observe(true), ServeState::Live);
        assert_eq!(w.observe(false), ServeState::Live);
        assert_eq!(w.observe(false), ServeState::Degraded);
    }

    #[test]
    fn recovery_requirement_strictly_grows_across_episodes() {
        let mut w = Watchdog::new(1, 2);
        let mut last = w.recovery_needed();
        for _ in 0..4 {
            w.observe(false); // degrade
            while w.state() == ServeState::Degraded {
                w.observe(true);
            }
            assert!(
                w.recovery_needed() > last,
                "recovery requirement must strictly grow"
            );
            last = w.recovery_needed();
        }
    }

    #[test]
    fn snapshot_restore_round_trips_mid_episode() {
        let mut w = Watchdog::new(2, 3);
        for verdict in [false, false, true, false, true] {
            w.observe(verdict);
        }
        let snap = w.snapshot();
        let mut fresh = Watchdog::new(2, 3);
        fresh.restore(&snap);
        assert_eq!(fresh, w);
        // Both continue identically.
        for verdict in [true, true, false, true] {
            assert_eq!(fresh.observe(verdict), w.observe(verdict));
        }
    }
}
