//! **The streaming runtime** — an endless collection → decode → localize →
//! reconfigure loop under injected control-plane faults.
//!
//! [`ServeRuntime::step`] serves exactly one epoch:
//!
//! 1. pull the epoch's workload from the [`EpochStream`] (pure in epoch);
//! 2. replay it through the fabric and every edge data plane;
//! 3. realize the epoch's [`EpochFaults`] and run *collection*: rebooted
//!    switches report empty groups, lost/timed-out reports never arrive,
//!    delayed ones pay deterministic retry backoff, duplicates are
//!    deduplicated, and the bounded inbox drops overflow (backpressure);
//! 4. analyze — a paused controller analyzes nothing (reports are
//!    perishable: sketch telemetry is only meaningful inside its epoch);
//! 5. feed the decode verdict to the [`Watchdog`]; in degraded mode the
//!    last-known-good runtime is held instead of acting on garbage;
//! 6. localize, stage the next runtime, flip the epoch groups, and emit
//!    one [`EpochRecord`].
//!
//! Everything is a deterministic function of the serve configuration:
//! no clocks, no ambient randomness, no iteration-order dependence. The
//! companion [`snapshot`](ServeRuntime::snapshot)/[`restore`](ServeRuntime::restore)
//! pair exploits that — at any epoch boundary the runtime's evolving
//! state fits in a [`ServeSnapshot`], and a restored process reproduces
//! the uninterrupted run's decisions and metrics byte for byte
//! (property-tested in `tests/service.rs`).

use std::collections::BTreeMap;

use chamelemon::control::EpochAnalysis;
use chamelemon::dataplane::CollectedGroup;
use chamelemon::{
    Controller, DataPlaneConfig, EdgeDataPlane, Localization, RuntimeConfig,
};
use chm_common::FiveTuple;
use chm_netsim::sim::EpochReport;
use chm_netsim::{ShardedReplay, Sharding, SimConfig, Simulator, SiteArray};
use chm_scenarios::{localization_hits, EpochStream, ReplayMode, Scenario, CFG_SALT};

use crate::fault::{EpochFaults, FaultPlan, ReportFate};
use crate::metrics::EpochRecord;
use crate::obs::ServeObs;
use crate::snapshot::ServeSnapshot;
use crate::watchdog::{ServeState, Watchdog};

/// Fixed virtual cost of one analyze + reconfigure pass (milliseconds) in
/// the deterministic latency model.
const DECODE_BASE_MS: f64 = 2.0;
/// Virtual per-report collection cost (milliseconds).
const PER_REPORT_MS: f64 = 0.25;

/// Static configuration of a serve run.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// The workload/impairment scenario streamed endlessly.
    pub scenario: Scenario,
    /// The control-plane fault model.
    pub faults: FaultPlan,
    /// Replay mode (burst by default; per-packet for differential runs).
    pub mode: ReplayMode,
    /// Bounded collection inbox: at most this many reports are accepted
    /// per epoch; `None` sizes it to the edge count (no backpressure).
    pub inbox_capacity: Option<usize>,
    /// Consecutive bad epochs before the watchdog degrades.
    pub stall_threshold: u32,
    /// Initial healthy-decode requirement to recover (strictly grows).
    pub base_recovery: u32,
}

impl ServeConfig {
    /// Service defaults over `scenario` and `faults`: burst replay, inbox
    /// sized to the topology, degrade after 4 bad epochs, recover after 2
    /// good ones (growing).
    pub fn new(scenario: Scenario, faults: FaultPlan) -> Self {
        ServeConfig {
            scenario,
            faults,
            mode: ReplayMode::Burst,
            inbox_capacity: None,
            stall_threshold: 4,
            base_recovery: 2,
        }
    }
}

/// Tallies of one epoch's collection step.
#[derive(Debug, Default)]
struct CollectionTally {
    delivered: u32,
    lost: u32,
    delayed: u32,
    timed_out: u32,
    duplicates: u32,
    backpressure_drops: u32,
    reboots: u32,
    max_backoff_ms: f64,
}

/// The streaming controller runtime. Build with [`new`](Self::new), drive
/// with [`step`](Self::step), persist with [`snapshot`](Self::snapshot).
pub struct ServeRuntime {
    cfg: DataPlaneConfig,
    serve: ServeConfig,
    stream: EpochStream,
    edges: Vec<EdgeDataPlane<FiveTuple>>,
    controller: Controller<FiveTuple>,
    simulator: Simulator,
    watchdog: Watchdog,
    last_good: RuntimeConfig,
    /// When set, epochs replay through the sharded engine — byte-identical
    /// output at any layout, so this is never part of a snapshot (execution
    /// strategy, not stream state).
    sharded: Option<ShardedReplay<FiveTuple>>,
    /// Telemetry (metric registry + span tree), fed once per epoch. Like a
    /// restarted Prometheus target, this is process-lifetime state — it is
    /// deliberately *not* part of a [`ServeSnapshot`] and restarts at zero.
    obs: ServeObs,
}

impl ServeRuntime {
    /// Builds the runtime over the scenario's topology with the scenario
    /// engine's data-plane configuration (so serve-mode results are
    /// comparable with the scenario matrix).
    pub fn new(serve: ServeConfig) -> Self {
        let s = &serve.scenario;
        let topology = s.build_topology();
        let cfg = DataPlaneConfig::small(s.seed ^ CFG_SALT);
        let runtime = RuntimeConfig::initial(&cfg);
        let edges = (0..topology.n_edges())
            .map(|_| EdgeDataPlane::new(cfg.clone(), runtime))
            .collect();
        let mut controller = Controller::new(cfg.clone());
        controller.enable_localization(topology.clone());
        let simulator = Simulator::new(
            topology,
            SimConfig { epoch_ms: 50.0, seed: s.seed ^ 0x51b },
        );
        let watchdog = Watchdog::new(serve.stall_threshold, serve.base_recovery);
        let stream = EpochStream::new(s.clone());
        ServeRuntime {
            cfg,
            serve,
            stream,
            edges,
            controller,
            simulator,
            watchdog,
            last_good: runtime,
            sharded: None,
            obs: ServeObs::new(),
        }
    }

    /// The runtime's telemetry: metric registry and span tree. Snapshot it
    /// with [`ServeObs::prom_snapshot`] / [`ServeObs::jsonl_line`].
    pub fn obs(&self) -> &ServeObs {
        &self.obs
    }

    /// Replays subsequent epochs through the sharded engine with `sharding`.
    /// The metrics stream stays byte-identical at any shard/worker count;
    /// snapshots taken under sharding restore into any other layout.
    pub fn set_sharding(&mut self, sharding: Sharding) {
        self.sharded = Some(ShardedReplay::new(sharding));
    }

    /// The epoch [`step`](Self::step) will serve next.
    pub fn next_epoch(&self) -> u64 {
        self.simulator.current_epoch()
    }

    /// Current serving state (live/degraded).
    pub fn state(&self) -> ServeState {
        self.watchdog.state()
    }

    /// Healthy decodes currently required to leave degraded mode.
    pub fn recovery_needed(&self) -> u32 {
        self.watchdog.recovery_needed()
    }

    /// Serves one epoch and returns its record. See the module docs for
    /// the pipeline.
    pub fn step(&mut self) -> EpochRecord {
        let epoch = self.simulator.current_epoch();
        let config_in_effect = *self.controller.deployed_runtime();
        let (trace, plan) = self.stream.at(epoch);

        // The service pipeline runs under the zero clock: span *counts*
        // accumulate (stages per epoch, decodes per edge, strategy picks)
        // while every duration stays exactly 0.0 — telemetry output is
        // byte-identical across runs and shard layouts. Real time only
        // ever enters via the bench harness.
        let mut zero = || 0.0;
        self.obs.spans.enter("epoch", &mut zero);

        // 1. Replay through the fabric and the edge data planes.
        let imp = &self.serve.scenario.impairments;
        let report = match (&mut self.sharded, self.serve.mode) {
            (Some(eng), ReplayMode::PerPacket) => eng.run_epoch_scenario(
                &mut self.simulator,
                &trace,
                &plan,
                imp,
                &mut self.edges,
            ),
            (Some(eng), ReplayMode::Burst) => eng.run_epoch_burst_scenario(
                &mut self.simulator,
                &trace,
                &plan,
                imp,
                &mut self.edges,
            ),
            (None, mode) => {
                let mut hooks = SiteArray(&mut self.edges);
                match mode {
                    ReplayMode::PerPacket => self.simulator.run_epoch_scenario(
                        &trace,
                        &plan,
                        imp,
                        &mut hooks,
                    ),
                    ReplayMode::Burst => self.simulator.run_epoch_burst_scenario(
                        &trace,
                        &plan,
                        imp,
                        &mut hooks,
                    ),
                }
            }
        };
        let ts_bit = (report.epoch & 1) as u8;
        self.obs.spans.record(&["replay"], 0.0);

        // 2. Faulted collection.
        let faults = self.serve.faults.realize(epoch, self.edges.len());
        let (inbox, tally) = self.collect(ts_bit, config_in_effect, &faults, epoch);
        self.obs.spans.record(&["collect"], 0.0);

        // 3. Analyze. A paused controller missed the collection window:
        //    the delivered reports perish unread (their sketches describe
        //    an epoch whose groups are about to be recycled).
        let collected: &[CollectedGroup<FiveTuple>] =
            if faults.controller_paused { &[] } else { &inbox };
        let analysis =
            self.controller
                .analyze_epoch_profiled(collected, &mut self.obs.spans, &mut zero);
        let blind = analysis.switches_reporting == 0;
        let decode_ok = decode_healthy(&analysis);

        // 4. Watchdog + reconfiguration. Degraded mode never acts on a
        //    garbage decode: it re-stages the last-known-good runtime.
        let state_after = self.watchdog.observe(!blind && decode_ok);
        let staged = if state_after == ServeState::Degraded {
            self.controller.hold_runtime(self.last_good);
            self.last_good
        } else {
            let staged = self.controller.reconfigure(&analysis);
            if !blind && decode_ok {
                self.last_good = staged;
            }
            staged
        };

        // 5. Localization — every epoch, so the evidence tables age even
        //    when no new blame arrives. A paused controller received no
        //    fabric telemetry either.
        let empty_depths = BTreeMap::new();
        let depths = if faults.controller_paused { &empty_depths } else { &report.queue_depth };
        let localization = self.controller.localize_with_telemetry_profiled(
            &analysis,
            depths,
            &mut self.obs.spans,
            &mut zero,
        );
        let (loc_top1, loc_top3) = hits_or_miss(&report, localization.as_ref());

        // 6. Stage + flip: the new runtime functions next epoch.
        for e in &mut self.edges {
            e.stage_runtime(staged);
            e.flip(ts_bit);
        }

        // 7. Score + record.
        let (precision, recall, f1) = score_detection(&report, &analysis);
        let reaction_ms = if faults.clock_stalled {
            None
        } else {
            Some(
                DECODE_BASE_MS
                    + PER_REPORT_MS * f64::from(tally.delivered + tally.delayed)
                    + tally.max_backoff_ms,
            )
        };
        self.obs.spans.exit(&mut zero);
        let record = EpochRecord {
            epoch,
            // The epoch is labeled with the state its *decision* was made
            // in — i.e. the state after this epoch's watchdog verdict.
            state: state_after.label(),
            blind,
            decode_ok,
            delivered: tally.delivered,
            lost: tally.lost,
            delayed: tally.delayed,
            timed_out: tally.timed_out,
            duplicates: tally.duplicates,
            backpressure_drops: tally.backpressure_drops,
            reboots: tally.reboots,
            paused: faults.controller_paused,
            clock_stalled: faults.clock_stalled,
            packets: report.total_sent(),
            true_victims: report.lost_at.len(),
            reported_victims: analysis.loss_report.len(),
            precision,
            recall,
            f1,
            loc_top1,
            loc_top3,
            m_hh: staged.partition.m_hh,
            m_hl: staged.partition.m_hl,
            m_ll: staged.partition.m_ll,
            sample_rate: staged.sample_rate(),
            reaction_ms,
        };
        self.obs.observe_epoch(&record);
        record
    }

    /// The collection step: applies per-report fates and the bounded
    /// inbox, returning the deduplicated reports that reached the
    /// controller plus the tally. Rebooted switches are replaced with
    /// factory-fresh data planes first — their report is *empty*, not
    /// missing, which is the harder failure to survive.
    fn collect(
        &mut self,
        ts_bit: u8,
        config_in_effect: RuntimeConfig,
        faults: &EpochFaults,
        epoch: u64,
    ) -> (Vec<CollectedGroup<FiveTuple>>, CollectionTally) {
        let mut tally = CollectionTally::default();
        let capacity = self.serve.inbox_capacity.unwrap_or(self.edges.len());
        let mut inbox = Vec::with_capacity(capacity.min(self.edges.len()));
        for i in 0..self.edges.len() {
            if faults.rebooted[i] {
                // The reboot wiped both sketch groups; the switch still
                // answers collection — with nothing in it.
                self.edges[i] = EdgeDataPlane::new(self.cfg.clone(), config_in_effect);
                tally.reboots += 1;
            }
            let group = self.edges[i].take_group(ts_bit);
            let arrived = match faults.fates[i] {
                ReportFate::Delivered => {
                    tally.delivered += 1;
                    true
                }
                ReportFate::Lost => {
                    tally.lost += 1;
                    false
                }
                ReportFate::Delayed(k) => {
                    if k <= self.serve.faults.max_retries {
                        tally.delayed += 1;
                        let backoff = self.serve.faults.backoff_ms(epoch, i, k);
                        if backoff > tally.max_backoff_ms {
                            tally.max_backoff_ms = backoff;
                        }
                        true
                    } else {
                        tally.timed_out += 1;
                        false
                    }
                }
                ReportFate::Duplicated => {
                    // The retry raced the original: two identical copies
                    // arrive; dedup by (switch, epoch) keeps the first and
                    // counts the discard.
                    tally.delivered += 1;
                    tally.duplicates += 1;
                    true
                }
            };
            if arrived {
                if inbox.len() < capacity {
                    inbox.push(group);
                } else {
                    tally.backpressure_drops += 1;
                }
            }
        }
        (inbox, tally)
    }

    /// Captures the runtime's evolving state at the current epoch
    /// boundary. Edge sketch state is deliberately absent: at a boundary
    /// both groups of every edge are empty and carry the deployed
    /// runtime, so [`restore`](Self::restore) rebuilds them exactly.
    pub fn snapshot(&self) -> ServeSnapshot {
        ServeSnapshot {
            epoch: self.simulator.current_epoch(),
            controller: self.controller.snapshot(),
            watchdog: self.watchdog.snapshot(),
            last_good: self.last_good,
        }
    }

    /// Restores a snapshot taken from a runtime with the same
    /// [`ServeConfig`]. After this, the stream of [`step`](Self::step)
    /// results — decisions *and* metrics bytes — is identical to the
    /// uninterrupted run's.
    pub fn restore(&mut self, snap: &ServeSnapshot) {
        self.controller.restore(&snap.controller);
        self.watchdog.restore(&snap.watchdog);
        self.last_good = snap.last_good;
        self.simulator.set_epoch(snap.epoch);
        let deployed = *self.controller.deployed_runtime();
        for e in &mut self.edges {
            *e = EdgeDataPlane::new(self.cfg.clone(), deployed);
        }
    }
}

/// The decode-health verdict fed to the watchdog: every encoder that had
/// memory must have decoded (mirrors the scenario scorer's `decode_ok`).
fn decode_healthy(a: &EpochAnalysis<FiveTuple>) -> bool {
    let p = a.runtime.partition;
    a.hh_decode_ok
        && (p.m_hl == 0 || a.hl_flowset.is_some())
        && (p.m_ll == 0 || a.ll_flowset.is_some())
}

/// Localization hit rates; a blind epoch localizes nothing, so every
/// ground-truth victim counts as a miss (1.0 only when there was nothing
/// to localize).
fn hits_or_miss(
    report: &EpochReport<FiveTuple>,
    loc: Option<&Localization<FiveTuple>>,
) -> (f64, f64) {
    match loc {
        Some(l) => localization_hits(report, l),
        None => {
            let any = report
                .lost_at
                .keys()
                .any(|f| report.dominant_drop_switch(f).is_some());
            if any {
                (0.0, 0.0)
            } else {
                (1.0, 1.0)
            }
        }
    }
}

/// Victim-detection precision/recall/F1 against ground truth. Epochs with
/// neither true nor reported victims are perfect; a metric whose
/// denominator is zero on one side only comes out 0.
fn score_detection(
    report: &EpochReport<FiveTuple>,
    analysis: &EpochAnalysis<FiveTuple>,
) -> (f64, f64, f64) {
    let truth = &report.lost_at;
    let reported = &analysis.loss_report;
    if truth.is_empty() && reported.is_empty() {
        return (1.0, 1.0, 1.0);
    }
    let tp = reported.keys().filter(|f| truth.contains_key(f)).count() as f64;
    let precision = if reported.is_empty() { 1.0 } else { tp / reported.len() as f64 };
    let recall = if truth.is_empty() { 1.0 } else { tp / truth.len() as f64 };
    let f1 = if precision + recall > 0.0 {
        2.0 * precision * recall / (precision + recall)
    } else {
        0.0
    };
    (precision, recall, f1)
}
