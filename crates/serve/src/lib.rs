//! **`chm-serve`** — a fault-injected, self-healing streaming controller
//! runtime for the ChameleMon reproduction.
//!
//! The scenario engine (`chm_scenarios`) runs finite, clean-control-plane
//! experiments. Production controllers do not get that luxury: reports
//! are lost, delayed and duplicated, switches reboot and come back empty,
//! the controller itself pauses, and clocks lie. This crate turns the
//! epoch pipeline into an *endless service* under exactly those faults:
//!
//! * [`fault`] — the seeded, per-epoch-deterministic fault model
//!   ([`FaultPlan`] → [`EpochFaults`]);
//! * [`watchdog`] — the stall detector and degraded-mode state machine
//!   with strictly-growing recovery requirements ([`Watchdog`]);
//! * [`runtime`] — the collection → decode → localize → reconfigure loop
//!   itself ([`ServeRuntime`]);
//! * [`metrics`] — one JSONL [`EpochRecord`] per epoch, built for
//!   byte-identical re-runs;
//! * [`snapshot`] — crash-consistent [`ServeSnapshot`]s: a process killed
//!   and restored at any epoch boundary reproduces the uninterrupted
//!   run's decisions and metrics byte for byte.
//!
//! The whole crate is clock-free and allocation-steady: wall time is only
//! ever measured by the bench harness around it, and the 10k-epoch soak
//! (`chm-bench soak`) gates on flat per-epoch allocation counts.

#![forbid(unsafe_code)]

pub mod fault;
pub mod metrics;
pub mod obs;
pub mod runtime;
pub mod snapshot;
pub mod watchdog;

pub use fault::{EpochFaults, FaultPlan, ReportFate};
pub use metrics::{json_f64, latency_percentiles, percentile, EpochRecord};
pub use obs::ServeObs;
pub use runtime::{ServeConfig, ServeRuntime};
pub use snapshot::ServeSnapshot;
pub use watchdog::{ServeState, Watchdog, WatchdogSnapshot};
