//! **Per-epoch service metrics** — one JSONL line per epoch.
//!
//! The record follows the repo's metric taxonomy: **time** (virtual
//! reaction latency), **throughput** (packets and reports processed),
//! **quality** (victim detection precision/recall/F1, localization hit
//! rates), and **overhead** (staged encoder partition, sample rate), plus
//! the service-specific fault and state columns.
//!
//! Serialization is hand-rolled (the repo vendors no serde) and built for
//! byte-identity: keys are emitted in one fixed order, floats print via
//! Rust's shortest-roundtrip formatter, and non-finite or unmeasured
//! values become JSON `null` — an unmeasured latency is `null`, never a
//! fake `0.0`.

/// Everything the runtime knows about one served epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochRecord {
    /// Epoch number in the stream.
    pub epoch: u64,
    /// Serving state in effect *during* this epoch.
    pub state: &'static str,
    /// The controller analyzed zero reports this epoch.
    pub blind: bool,
    /// All decodes of the analyzed collection succeeded.
    pub decode_ok: bool,
    /// Reports that arrived on the first try.
    pub delivered: u32,
    /// Reports lost outright.
    pub lost: u32,
    /// Reports that arrived late (within the retry budget).
    pub delayed: u32,
    /// Reports that exceeded the retry budget (counted as lost too late).
    pub timed_out: u32,
    /// Duplicate report copies discarded by dedup.
    pub duplicates: u32,
    /// Reports dropped because the bounded inbox overflowed.
    pub backpressure_drops: u32,
    /// Switches that rebooted (and thus reported empty groups).
    pub reboots: u32,
    /// Controller missed the collection window.
    pub paused: bool,
    /// Latency clock was unreliable; `reaction_ms` is null.
    pub clock_stalled: bool,
    /// Packets the fabric carried this epoch.
    pub packets: u64,
    /// Ground-truth victim flows.
    pub true_victims: usize,
    /// Victim flows the controller reported.
    pub reported_victims: usize,
    /// Victim detection precision (null when nothing was reported).
    pub precision: f64,
    /// Victim detection recall (null when there were no victims).
    pub recall: f64,
    /// Victim detection F1.
    pub f1: f64,
    /// Top-1 localization hit rate over ground-truth victims.
    pub loc_top1: f64,
    /// Top-3 localization hit rate.
    pub loc_top3: f64,
    /// Staged HH encoder buckets/array.
    pub m_hh: usize,
    /// Staged HL encoder buckets/array.
    pub m_hl: usize,
    /// Staged LL encoder buckets/array.
    pub m_ll: usize,
    /// Staged LL sample rate.
    pub sample_rate: f64,
    /// Virtual controller reaction latency (collection + retry backoff),
    /// `None` when the clock stalled this epoch.
    pub reaction_ms: Option<f64>,
}

/// Formats a float for JSON: shortest-roundtrip decimal, `null` for
/// non-finite values (NaN percentages from 0/0 epochs, unmeasured values).
pub fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

impl EpochRecord {
    /// The record as one JSON object on one line, keys in fixed order.
    pub fn to_jsonl(&self) -> String {
        let reaction = match self.reaction_ms {
            Some(ms) => json_f64(ms),
            None => "null".to_string(),
        };
        format!(
            concat!(
                "{{\"epoch\":{},\"state\":\"{}\",\"blind\":{},\"decode_ok\":{},",
                "\"delivered\":{},\"lost\":{},\"delayed\":{},\"timed_out\":{},",
                "\"duplicates\":{},\"backpressure_drops\":{},\"reboots\":{},",
                "\"paused\":{},\"clock_stalled\":{},\"packets\":{},",
                "\"true_victims\":{},\"reported_victims\":{},",
                "\"precision\":{},\"recall\":{},\"f1\":{},",
                "\"loc_top1\":{},\"loc_top3\":{},",
                "\"m_hh\":{},\"m_hl\":{},\"m_ll\":{},\"sample_rate\":{},",
                "\"reaction_ms\":{}}}"
            ),
            self.epoch,
            self.state,
            self.blind,
            self.decode_ok,
            self.delivered,
            self.lost,
            self.delayed,
            self.timed_out,
            self.duplicates,
            self.backpressure_drops,
            self.reboots,
            self.paused,
            self.clock_stalled,
            self.packets,
            self.true_victims,
            self.reported_victims,
            json_f64(self.precision),
            json_f64(self.recall),
            json_f64(self.f1),
            json_f64(self.loc_top1),
            json_f64(self.loc_top3),
            self.m_hh,
            self.m_hl,
            self.m_ll,
            json_f64(self.sample_rate),
            reaction,
        )
    }
}

/// The `p`-th percentile (`0 ≤ p ≤ 1`) of an **unsorted** sample by the
/// nearest-rank method; `None` on an empty sample. Sorting happens on a
/// copy — callers keep their insertion order.
///
/// **Small-sample behavior:** nearest-rank rounds the rank *up*, so any
/// percentile whose rank lands past the last distinct position returns
/// the **maximum** sample. Concretely, `p999` on fewer than 1000 samples
/// is exactly `max(samples)` (rank `ceil(0.999·n)` = `n` for `n < 1000`),
/// and on a single sample every percentile is that sample. This is the
/// standard nearest-rank definition, not a bug — but it means a tail
/// percentile is only meaningful once `n ≥ 1/(1-p)`.
pub fn percentile(samples: &[f64], p: f64) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    Some(sorted[rank - 1])
}

/// The (p50, p99, p999) triple of a sample, `None` when empty. The p999
/// column inherits [`percentile`]'s nearest-rank small-sample behavior:
/// with fewer than 1000 samples it reports the sample maximum.
pub fn latency_percentiles(samples: &[f64]) -> Option<(f64, f64, f64)> {
    Some((
        percentile(samples, 0.50)?,
        percentile(samples, 0.99)?,
        percentile(samples, 0.999)?,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> EpochRecord {
        EpochRecord {
            epoch: 3,
            state: "live",
            blind: false,
            decode_ok: true,
            delivered: 4,
            lost: 0,
            delayed: 1,
            timed_out: 0,
            duplicates: 1,
            backpressure_drops: 0,
            reboots: 0,
            paused: false,
            clock_stalled: false,
            packets: 1000,
            true_victims: 10,
            reported_victims: 9,
            precision: 1.0,
            recall: 0.9,
            f1: 0.9473684210526315,
            loc_top1: 0.5,
            loc_top3: 0.8,
            m_hh: 448,
            m_hl: 64,
            m_ll: 0,
            sample_rate: 1.0,
            reaction_ms: Some(12.5),
        }
    }

    #[test]
    fn jsonl_is_stable_and_null_safe() {
        let r = record();
        assert_eq!(r.to_jsonl(), r.to_jsonl());
        assert!(r.to_jsonl().starts_with("{\"epoch\":3,\"state\":\"live\""));
        let stalled = EpochRecord {
            reaction_ms: None,
            precision: f64::NAN,
            ..record()
        };
        let line = stalled.to_jsonl();
        assert!(line.contains("\"reaction_ms\":null"));
        assert!(line.contains("\"precision\":null"));
        assert!(!line.contains("NaN"));
    }

    #[test]
    fn percentiles_nearest_rank() {
        let xs: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&xs, 0.50), Some(50.0));
        assert_eq!(percentile(&xs, 0.99), Some(99.0));
        assert_eq!(percentile(&xs, 0.999), Some(100.0));
        assert_eq!(percentile(&[], 0.5), None);
        // Unsorted input is handled.
        assert_eq!(percentile(&[3.0, 1.0, 2.0], 0.5), Some(2.0));
    }

    #[test]
    fn percentile_small_sample_edges() {
        // n = 0: no sample, no percentile — every p.
        for p in [0.0, 0.5, 0.999, 1.0] {
            assert_eq!(percentile(&[], p), None);
        }
        // n = 1: every percentile is the one sample (rank clamps to 1).
        for p in [0.0, 0.5, 0.99, 0.999, 1.0] {
            assert_eq!(percentile(&[42.0], p), Some(42.0));
        }
        // n = 2: the median is the lower sample (rank ceil(0.5*2)=1), and
        // every tail percentile saturates to the max.
        assert_eq!(percentile(&[10.0, 20.0], 0.50), Some(10.0));
        assert_eq!(percentile(&[10.0, 20.0], 0.51), Some(20.0));
        assert_eq!(percentile(&[10.0, 20.0], 0.99), Some(20.0));
        assert_eq!(percentile(&[10.0, 20.0], 0.999), Some(20.0));
        // The documented n < 1000 saturation: p999 == max exactly.
        let xs: Vec<f64> = (1..=999).map(f64::from).collect();
        assert_eq!(percentile(&xs, 0.999), Some(999.0));
        assert_eq!(latency_percentiles(&xs).map(|t| t.2), Some(999.0));
    }
}
