//! `chm-serve` — the streaming controller service CLI.
//!
//! ```text
//! chm-serve [--epochs <n>] [--seed <s>] [--profile none|standard|stress]
//!           [--scenario calm|congested] [--inbox-capacity <n>]
//!           [--shards <n>] [--metrics <path|->] [--metrics-out <path>]
//!           [--prom-out <path>] [--snapshot <path>] [--snapshot-every <k>]
//!           [--restore <path>] [--quiet]
//! ```
//!
//! Serves `n` epochs of the scenario's endless workload stream through the
//! fault-injected runtime, writing one JSONL [`EpochRecord`] line per
//! epoch to `--metrics` (default stdout). `--snapshot-every k` overwrites
//! `--snapshot` with a crash-consistent [`ServeSnapshot`] every `k`
//! epochs (and once more at exit); `--restore` resumes from one — the
//! combined metrics stream of a killed-and-restored run is byte-identical
//! to an uninterrupted one (CI proves this with `cmp`).
//!
//! The process is fully deterministic: same flags, same bytes. It reads
//! no clock — real-time latency measurement lives in `chm-bench soak`.
//! `--shards <n>` replays each epoch through the sharded engine; the
//! metrics stream (and any snapshot) is byte-identical at every shard
//! count, so the flag only changes how the replay work is scheduled.
//!
//! Telemetry sinks (`chm_obs`): `--metrics-out <path>` appends one JSONL
//! line per epoch (`{"epoch":N,"metrics":{...},"spans":{...}}` — the flat
//! registry plus the cumulative span tree) and `--prom-out <path>`
//! rewrites a Prometheus text-format 0.0.4 snapshot after every epoch.
//! Both run under the injected zero clock, so their bytes too are
//! identical across runs and shard counts (CI cmp-gates this).

use std::io::Write;

use chm_netsim::Sharding;
use chm_scenarios::Scenario;
use chm_serve::{FaultPlan, ServeConfig, ServeRuntime, ServeSnapshot, ServeState};

fn usage() -> ! {
    eprintln!(
        "usage: chm-serve [--epochs <n>] [--seed <s>] \
         [--profile none|standard|stress] [--scenario calm|congested]\n       \
         [--inbox-capacity <n>] [--shards <n>] [--metrics <path|->]\n       \
         [--metrics-out <path>] [--prom-out <path>] [--snapshot <path>] \
         [--snapshot-every <k>] [--restore <path>] [--quiet]"
    );
    std::process::exit(2);
}

fn fail(msg: String) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1);
}

/// The two serve-mode workload presets. `calm` is the scenario engine's
/// baseline traffic; `congested` adds the queue model with microbursts and
/// a slow-draining ToR so localization has something to find.
fn scenario_for(name: &str, seed: u64) -> Scenario {
    match name {
        "calm" => Scenario::builder("serve_calm").seed(seed).flows(600).build(),
        "congested" => Scenario::builder("serve_congested")
            .seed(seed)
            .flows(600)
            .congestion()
            .queue_model(8)
            .microburst(0.3, 2)
            .slow_drain_tor(1, 0.55)
            .build(),
        _ => usage(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut epochs: u64 = 256;
    let mut seed: u64 = 0xc4a3;
    let mut profile = "standard".to_string();
    let mut scenario_name = "congested".to_string();
    let mut inbox_capacity: Option<usize> = None;
    let mut shards: Option<usize> = None;
    let mut metrics_path = "-".to_string();
    let mut obs_jsonl_path: Option<String> = None;
    let mut prom_path: Option<String> = None;
    let mut snapshot_path: Option<String> = None;
    let mut snapshot_every: Option<u64> = None;
    let mut restore_path: Option<String> = None;
    let mut quiet = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--epochs" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) => epochs = n,
                None => usage(),
            },
            "--seed" => match it.next().and_then(|n| n.parse().ok()) {
                Some(s) => seed = s,
                None => usage(),
            },
            "--profile" => match it.next() {
                Some(p) => profile = p.clone(),
                None => usage(),
            },
            "--scenario" => match it.next() {
                Some(s) => scenario_name = s.clone(),
                None => usage(),
            },
            "--inbox-capacity" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) if n >= 1 => inbox_capacity = Some(n),
                _ => usage(),
            },
            "--shards" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) if n >= 1 => shards = Some(n),
                _ => usage(),
            },
            "--metrics" => match it.next() {
                Some(p) => metrics_path = p.clone(),
                None => usage(),
            },
            "--metrics-out" => match it.next() {
                Some(p) => obs_jsonl_path = Some(p.clone()),
                None => usage(),
            },
            "--prom-out" => match it.next() {
                Some(p) => prom_path = Some(p.clone()),
                None => usage(),
            },
            "--snapshot" => match it.next() {
                Some(p) => snapshot_path = Some(p.clone()),
                None => usage(),
            },
            "--snapshot-every" => match it.next().and_then(|n| n.parse().ok()) {
                Some(k) if k >= 1 => snapshot_every = Some(k),
                _ => usage(),
            },
            "--restore" => match it.next() {
                Some(p) => restore_path = Some(p.clone()),
                None => usage(),
            },
            "--quiet" => quiet = true,
            _ => usage(),
        }
    }
    let faults = match profile.as_str() {
        "none" => FaultPlan::none(seed),
        "standard" => FaultPlan::standard(seed),
        "stress" => FaultPlan::stress(seed),
        _ => usage(),
    };
    if snapshot_every.is_some() && snapshot_path.is_none() {
        fail("--snapshot-every needs --snapshot <path>".to_string());
    }

    let mut serve_cfg = ServeConfig::new(scenario_for(&scenario_name, seed), faults);
    serve_cfg.inbox_capacity = inbox_capacity;
    let mut rt = ServeRuntime::new(serve_cfg);
    if let Some(n) = shards {
        rt.set_sharding(Sharding::of(n));
    }
    if let Some(path) = &restore_path {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| fail(format!("could not read snapshot {path}: {e}")));
        let snap = ServeSnapshot::parse(&text)
            .unwrap_or_else(|e| fail(format!("could not parse snapshot {path}: {e}")));
        rt.restore(&snap);
    }

    let stdout = std::io::stdout();
    let mut sink: Box<dyn Write> = if metrics_path == "-" {
        Box::new(std::io::BufWriter::new(stdout.lock()))
    } else {
        let f = std::fs::File::create(&metrics_path)
            .unwrap_or_else(|e| fail(format!("could not create {metrics_path}: {e}")));
        Box::new(std::io::BufWriter::new(f))
    };

    let mut obs_sink: Option<std::io::BufWriter<std::fs::File>> =
        obs_jsonl_path.as_ref().map(|p| {
            let f = std::fs::File::create(p)
                .unwrap_or_else(|e| fail(format!("could not create {p}: {e}")));
            std::io::BufWriter::new(f)
        });
    let write_prom = |rt: &ServeRuntime| {
        if let Some(path) = &prom_path {
            if let Err(e) = std::fs::write(path, rt.obs().prom_snapshot()) {
                fail(format!("could not write Prometheus snapshot {path}: {e}"));
            }
        }
    };

    let write_snap = |rt: &ServeRuntime| {
        if let Some(path) = &snapshot_path {
            if let Err(e) = std::fs::write(path, rt.snapshot().serialize()) {
                fail(format!("could not write snapshot {path}: {e}"));
            }
        }
    };

    let first = rt.next_epoch();
    let mut degraded_epochs = 0u64;
    let mut blind_epochs = 0u64;
    while rt.next_epoch() < first + epochs {
        let record = rt.step();
        degraded_epochs += u64::from(record.state == "degraded");
        blind_epochs += u64::from(record.blind);
        if let Err(e) = writeln!(sink, "{}", record.to_jsonl()) {
            fail(format!("could not write metrics: {e}"));
        }
        if let Some(obs_sink) = &mut obs_sink {
            if let Err(e) = writeln!(obs_sink, "{}", rt.obs().jsonl_line(record.epoch)) {
                fail(format!("could not write telemetry trace: {e}"));
            }
        }
        write_prom(&rt);
        if let Some(k) = snapshot_every {
            if (rt.next_epoch() - first).is_multiple_of(k) {
                write_snap(&rt);
            }
        }
    }
    if let Err(e) = sink.flush() {
        fail(format!("could not flush metrics: {e}"));
    }
    if let Some(obs_sink) = &mut obs_sink {
        if let Err(e) = obs_sink.flush() {
            fail(format!("could not flush telemetry trace: {e}"));
        }
    }
    write_snap(&rt);

    if !quiet {
        eprintln!(
            "served epochs {first}..{}: {} degraded, {} blind; state {}; \
             recovery requirement {}",
            first + epochs,
            degraded_epochs,
            blind_epochs,
            match rt.state() {
                ServeState::Live => "live",
                ServeState::Degraded => "degraded",
            },
            rt.recovery_needed(),
        );
    }
}
