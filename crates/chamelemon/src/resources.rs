//! Tofino resource accounting (Table 1) and the reconfiguration-time model
//! (Figure 22), per the implementation details of Appendix D.1–D.2.
//!
//! Table 1 is a static property of the compiled P4 program; we reproduce the
//! *accounting rules* described in the appendix:
//!
//! * **Stateful ALUs** — one per counter/lane array: the flow classifier
//!   needs one SALU per counter array (the two groups share registers by
//!   doubling counters, not by doubling SALUs); every Fermat bucket array
//!   needs five SALUs (four ID/fingerprint lanes + one count lane,
//!   Figure 13).
//! * **SRAM** — register memory: doubled (two groups) sketch bytes, in
//!   16 KiB units.
//! * **TCAM** — range-match entries implementing `mod m'` for each encoder
//!   partition (§D.1 "modulo operation ... at the cost of TCAM resources"),
//!   with the value range held within `[4m', 8m')` so each modulo table
//!   needs roughly 4–8 entries.
//! * **Hash bits** — CRC output bits: one base index per Fermat array plus
//!   one per classifier array plus sampling/fingerprint bits.
//!
//! The reconfiguration-time model reproduces Figure 22's 2–7 ms CDF: a
//! fixed driver overhead plus a per-TCAM-entry update cost, with the entry
//! count depending on the (randomized) partition sizes.

use crate::config::{DataPlaneConfig, RuntimeConfig};
use chm_common::hash::mix64;

/// Resource usage of the ChameleMon data plane on one Tofino switch.
#[derive(Debug, Clone, PartialEq)]
pub struct ResourceUsage {
    /// Stateful ALUs used.
    pub salus: usize,
    /// SALUs available on the reference Tofino (12 stages × 4).
    pub salus_total: usize,
    /// SRAM blocks of 16 KiB.
    pub sram_blocks: usize,
    /// SRAM blocks available.
    pub sram_total: usize,
    /// TCAM entries for the modulo range tables.
    pub tcam_entries: usize,
    /// Hash bits consumed.
    pub hash_bits: usize,
    /// Hash bits available on the reference Tofino (Table 1 reports the
    /// paper's 809 bits as 16.21%, giving a 4992-bit budget).
    pub hash_bits_total: usize,
}

impl ResourceUsage {
    /// SALU utilization in percent (Table 1 reports 66.67% at defaults).
    pub fn salu_pct(&self) -> f64 {
        self.salus as f64 / self.salus_total as f64 * 100.0
    }

    /// Hash-bit utilization in percent.
    pub fn hash_pct(&self) -> f64 {
        self.hash_bits as f64 / self.hash_bits_total as f64 * 100.0
    }
}

/// Lanes per Fermat bucket on the switch: 4 ID/fingerprint + 1 count
/// (Figure 13).
pub const BUCKET_LANES: usize = 5;

/// Computes Table-1-style resource usage for a configuration.
pub fn resource_usage(cfg: &DataPlaneConfig) -> ResourceUsage {
    // SALUs: classifier arrays + (upstream + downstream) × d × 5 lanes.
    let classifier_salus = cfg.tower.levels.len();
    let fermat_salus = 2 * cfg.arrays * BUCKET_LANES;
    let salus = classifier_salus + fermat_salus;

    // SRAM: both groups of classifier + upstream + downstream, 16 KiB units.
    let sketch_bytes = 2
        * (cfg.tower.memory_bytes()
            + cfg.arrays * cfg.m_uf * BUCKET_LANES * 4
            + cfg.arrays * cfg.m_df * BUCKET_LANES * 4);
    let sram_blocks = sketch_bytes.div_ceil(16 * 1024);

    // TCAM: one modulo table per hierarchy per array, both directions;
    // 3 upstream partitions + 2 downstream partitions, ~`d` arrays each,
    // but the table is shared across arrays via the same base-index width
    // (§D.1 uses 8 TCAM entries total at defaults — one blended table).
    let tcam_entries = 8;

    // Hash bits: classifier (one log2(w) index per level) + Fermat base
    // indexes (d × up-to-13-bit indexes with the 4m'-8m' masking rule) +
    // 16-bit sampling + per-packet timestamp bit.
    let classifier_bits: usize = cfg
        .tower
        .levels
        .iter()
        .map(|l| (l.width as f64).log2().ceil() as usize)
        .sum();
    let fermat_bits = 2 * cfg.arrays * ((8 * cfg.m_uf) as f64).log2().ceil() as usize;
    let hash_bits = classifier_bits + fermat_bits + 16 + 1;

    ResourceUsage {
        salus,
        salus_total: 48,
        sram_blocks,
        sram_total: 960,
        tcam_entries,
        hash_bits,
        hash_bits_total: 4992,
    }
}

/// Reconfiguration cost model (Figure 22): the switch control plane updates
/// the match-action tables (thresholds, sampling, and TCAM modulo entries)
/// staged for the next epoch. Cost = driver base + per-entry TCAM update.
///
/// Calibrated so 10K random reconfigurations span ≈ 2–7 ms with ~60% below
/// 5 ms, matching the figure.
pub fn reconfiguration_time_ms(cfg: &DataPlaneConfig, rt: &RuntimeConfig, salt: u64) -> f64 {
    const BASE_MS: f64 = 2.0;
    const PER_ENTRY_MS: f64 = 0.034;
    // Each non-empty partition needs a modulo range table per array; the
    // number of range entries depends on where the 4m'..8m' window falls:
    // 4..=8 entries, derived deterministically from the partition size.
    let mut entries = 0usize;
    for (i, m) in [
        rt.partition.m_hh,
        rt.partition.m_hl,
        rt.partition.m_ll,
        rt.partition.m_hl, // downstream HL
        rt.partition.m_ll, // downstream LL
    ]
    .into_iter()
    .enumerate()
    {
        if m == 0 {
            continue;
        }
        let jitter = (mix64(salt ^ (i as u64) << 32 ^ m as u64) % 5) as usize; // 0..=4
        entries += cfg.arrays * (4 + jitter);
    }
    // Threshold/sampling exact-match updates are cheap but non-zero.
    let exact_updates = 3.0 * 0.02;
    BASE_MS + entries as f64 * PER_ENTRY_MS + exact_updates
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Partition;

    #[test]
    fn table1_salus_match_paper() {
        let cfg = DataPlaneConfig::paper_default(1);
        let r = resource_usage(&cfg);
        // Table 1: 32 SALUs = 66.67%.
        assert_eq!(r.salus, 32);
        assert!((r.salu_pct() - 66.67).abs() < 0.01);
    }

    #[test]
    fn table1_sram_in_band() {
        let cfg = DataPlaneConfig::paper_default(2);
        let r = resource_usage(&cfg);
        // 2×(64 KiB + 240 KiB + 180 KiB) ≈ 969 KiB → 61 blocks. The paper
        // reports 130 blocks (13.54%) including table/overhead SRAM; our
        // register-only accounting must stay within the same order.
        assert!((40..=140).contains(&r.sram_blocks), "{}", r.sram_blocks);
        assert!(r.sram_blocks < r.sram_total / 4);
    }

    #[test]
    fn table1_tcam_matches() {
        let cfg = DataPlaneConfig::paper_default(3);
        assert_eq!(resource_usage(&cfg).tcam_entries, 8);
    }

    #[test]
    fn hash_bits_scale_with_config() {
        let small = resource_usage(&DataPlaneConfig::small(4));
        let big = resource_usage(&DataPlaneConfig::paper_default(4));
        assert!(big.hash_bits > small.hash_bits);
        // Paper: 809 hash bits (16.21%); our index-only accounting lands in
        // the same regime (order 100), scaled by what we model.
        assert!(big.hash_bits > 50 && big.hash_bits < 1000);
    }

    #[test]
    fn reconfig_time_in_figure_band() {
        let cfg = DataPlaneConfig::paper_default(5);
        let mut times = Vec::new();
        for salt in 0..2000u64 {
            let mut rt = RuntimeConfig::initial(&cfg);
            // Random-ish partitions, as the Figure-22 experiment does.
            let m_hl = 512 + (mix64(salt) % 2560) as usize;
            let m_ll = (mix64(salt ^ 1) % 512) as usize;
            let m_ll = m_ll.min(cfg.m_df - m_hl.min(cfg.m_df));
            rt.partition = Partition {
                m_hh: cfg.m_uf - m_hl - m_ll,
                m_hl,
                m_ll,
            };
            times.push(reconfiguration_time_ms(&cfg, &rt, salt));
        }
        let min = times.iter().cloned().fold(f64::MAX, f64::min);
        let max = times.iter().cloned().fold(0.0, f64::max);
        assert!(min >= 2.0, "min {min}");
        assert!(max <= 7.0, "max {max}");
        let below5 = times.iter().filter(|&&t| t < 5.0).count() as f64 / times.len() as f64;
        assert!((0.3..=0.9).contains(&below5), "below-5ms fraction {below5}");
    }

    #[test]
    fn zero_partitions_cost_less() {
        let cfg = DataPlaneConfig::paper_default(6);
        let healthy = RuntimeConfig::initial(&cfg); // m_ll = 0
        let mut ill = healthy;
        ill.partition = cfg.ill_partition;
        ill.tl = 2;
        let t_healthy = reconfiguration_time_ms(&cfg, &healthy, 9);
        let t_ill = reconfiguration_time_ms(&cfg, &ill, 9);
        assert!(t_ill > t_healthy, "ill {t_ill} vs healthy {t_healthy}");
    }
}
