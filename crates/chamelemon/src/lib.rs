//! **ChameleMon** — the paper's primary contribution: a network-wide
//! measurement system that supports packet loss tasks and packet
//! accumulation tasks *simultaneously* and shifts measurement attention
//! between them as the network state changes (§2–§4).
//!
//! The crate is organized like the system:
//!
//! * [`config`] — static (compile-time) and runtime (reconfigurable)
//!   parameters: encoder partition sizes, thresholds `Th`/`Tl`, LL sample
//!   rate;
//! * [`dataplane`] — the per-edge-switch data plane: TowerSketch flow
//!   classifier + partitioned upstream flow encoder (HH/HL/LL) + partitioned
//!   downstream flow encoder (HL/LL), with two sketch groups rotated by the
//!   1-bit epoch timestamp (§3.2, Appendix B);
//! * [`control`] — the central controller: collection, network-wide
//!   analysis, the healthy/ill network-state machine, and the
//!   attention-shifting reconfiguration (§4.3);
//! * [`tasks`] — the seven measurement tasks (§4.2);
//! * [`resources`] — the Tofino resource accounting behind Table 1 and the
//!   reconfiguration-time model behind Figure 22 (Appendix D).
//!
//! # Quick start
//!
//! ```
//! use chamelemon::{ChameleMon, config::DataPlaneConfig};
//! use chm_workloads::{testbed_trace, LossPlan, VictimSelection, WorkloadKind};
//!
//! // A small deployment over the 4-edge testbed topology.
//! let mut system = ChameleMon::testbed(DataPlaneConfig::small(0x5eed));
//! let trace = testbed_trace(WorkloadKind::Dctcp, 2_000, 8, 1);
//! let plan = LossPlan::build(&trace, VictimSelection::RandomRatio(0.05), 0.01, 2);
//!
//! // Run a few epochs; the controller analyzes and reconfigures each time.
//! for _ in 0..3 {
//!     let outcome = system.run_epoch(&trace, &plan);
//!     println!(
//!         "epoch {}: {} victim flows reported",
//!         outcome.report.epoch,
//!         outcome.analysis.loss_report.len()
//!     );
//! }
//! ```

#![forbid(unsafe_code)]

pub mod config;
pub mod control;
pub mod dataplane;
pub mod localize;
pub mod resources;
pub mod tasks;

pub use config::{DataPlaneConfig, Partition, RuntimeConfig};
pub use control::{Controller, ControllerSnapshot, EpochAnalysis, NetworkState};
pub use dataplane::{CollectedGroup, EdgeDataPlane, Hierarchy, SketchGroup};
pub use localize::{
    EpochEvidence, Localization, Localizer, LocalizerSnapshot, PARTIAL_DECODE_CONFIDENCE,
};

use chm_netsim::{FatTree, SimConfig, SiteArray, Simulator, Topology};
use chm_netsim::sim::{EpochReport, Routable};
use chm_workloads::{LossPlan, Trace};

/// A full deployment: one data plane per edge switch, a simulator that
/// drives packets through them, and the central controller.
///
/// This is the highest-level API — examples and the figure-7/8/9 experiments
/// use it directly. Lower-level pieces ([`EdgeDataPlane`], [`Controller`])
/// are public for finer-grained use.
pub struct ChameleMon<F: chm_common::FlowId> {
    /// Per-edge-switch data planes.
    pub edges: Vec<EdgeDataPlane<F>>,
    /// The central controller.
    pub controller: Controller<F>,
    /// The packet-level simulator standing in for the testbed fabric.
    pub simulator: Simulator,
}

/// Everything produced by one epoch: the simulator's ground truth and the
/// controller's analysis of the collected sketches.
pub struct EpochOutcome<F: chm_common::FlowId> {
    /// Ground truth (delivered/lost per flow) from the fabric.
    pub report: EpochReport<F>,
    /// The controller's decoded view and estimates.
    pub analysis: EpochAnalysis<F>,
    /// The runtime configuration that *was in effect* during this epoch.
    pub config_in_effect: RuntimeConfig,
    /// The runtime configuration the controller staged for the next epoch.
    pub staged_runtime: RuntimeConfig,
    /// Time the controller spent analyzing + reconfiguring — the "response
    /// time" of Figure 20. The library never reads a clock itself: this is
    /// `None` under [`ChameleMon::run_epoch`] and measured only when the
    /// bench harness injects a clock via
    /// [`ChameleMon::run_epoch_with_clock`]. There is deliberately no `0.0`
    /// placeholder — "not measured" must never masquerade as "instant".
    pub response_time_s: Option<f64>,
}

impl<F: chm_common::FlowId> ChameleMon<F> {
    /// Builds a deployment over the §5.2 testbed fat-tree (4 edge switches).
    pub fn testbed(cfg: DataPlaneConfig) -> Self {
        Self::new(cfg, FatTree::testbed(), SimConfig::default())
    }

    /// Builds a deployment over an arbitrary topology (one edge data plane
    /// per edge switch of the fabric).
    pub fn new(cfg: DataPlaneConfig, topology: impl Into<Topology>, sim: SimConfig) -> Self {
        let topology = topology.into();
        let runtime = RuntimeConfig::initial(&cfg);
        let edges = (0..topology.n_edges())
            .map(|_| EdgeDataPlane::new(cfg.clone(), runtime))
            .collect();
        ChameleMon {
            edges,
            controller: Controller::new(cfg),
            simulator: Simulator::new(topology, sim),
        }
    }

    /// Runs one full epoch: replay the trace with losses, flip the epoch
    /// timestamp, take ownership of the finished sketch group from every
    /// edge (zero-clone collection), analyze, reconfigure (effective next
    /// epoch), and install the new runtime configuration.
    pub fn run_epoch(&mut self, trace: &Trace<F>, plan: &LossPlan<F>) -> EpochOutcome<F>
    where
        F: Routable,
    {
        // Determinism: the library owns no clock. `response_time_s` is
        // `None` here; the bench harness measures real time by injecting a
        // clock through `run_epoch_with_clock`.
        self.run_epoch_inner(trace, plan, None)
    }

    /// [`run_epoch`](Self::run_epoch) with an injected monotonic clock
    /// (seconds as `f64`): `now_s` is sampled immediately before and after
    /// the controller's analyze + reconfigure step and the difference is
    /// reported as [`EpochOutcome::response_time_s`]. Only the bench
    /// timing harness passes a real clock; everything else goes through
    /// [`run_epoch`](Self::run_epoch) and stays bit-reproducible.
    pub fn run_epoch_with_clock(
        &mut self,
        trace: &Trace<F>,
        plan: &LossPlan<F>,
        now_s: &mut dyn FnMut() -> f64,
    ) -> EpochOutcome<F>
    where
        F: Routable,
    {
        self.run_epoch_inner(trace, plan, Some(now_s))
    }

    fn run_epoch_inner(
        &mut self,
        trace: &Trace<F>,
        plan: &LossPlan<F>,
        mut now_s: Option<&mut dyn FnMut() -> f64>,
    ) -> EpochOutcome<F>
    where
        F: Routable,
    {
        let config_in_effect = *self.controller.deployed_runtime();
        let report = {
            // `EdgeDataPlane` implements `chm_netsim::EdgeSite`; `SiteArray`
            // adapts the edge slice to the simulator's hook traits.
            let mut hooks = SiteArray(&mut self.edges);
            // Burst replay: one hook call per flow, sketch state identical
            // to the per-packet path (see `TowerSketch::insert_burst`).
            self.simulator.run_epoch_burst(trace, plan, &mut hooks)
        };
        let ts_bit = (report.epoch & 1) as u8;
        // Epoch ended: the controller takes the monitoring groups whole —
        // `mem::replace` hands it owned snapshots, nothing is copied.
        let collected: Vec<CollectedGroup<F>> =
            self.edges.iter_mut().map(|e| e.take_group(ts_bit)).collect();
        let t0 = now_s.as_mut().map(|f| f());
        let analysis = self.controller.analyze_epoch(&collected);
        let new_runtime = self.controller.reconfigure(&analysis);
        let response_time_s = now_s.as_mut().zip(t0).map(|(f, t0)| f() - t0);
        // The reconfiguration functions in the *next* epoch (§4.3): stage it
        // on every edge; the flip below swaps groups and applies it.
        for e in &mut self.edges {
            e.stage_runtime(new_runtime);
            e.flip(ts_bit);
        }
        EpochOutcome {
            report,
            analysis,
            config_in_effect,
            staged_runtime: new_runtime,
            response_time_s,
        }
    }
}
