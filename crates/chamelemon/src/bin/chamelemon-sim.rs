//! `chamelemon-sim` — run the full system on the simulated testbed from the
//! command line.
//!
//! ```text
//! chamelemon-sim [--workload dctcp|hadoop|vl2|cache] [--flows N]
//!                [--victim-ratio R] [--loss-rate R] [--epochs N]
//!                [--seed S] [--paper-scale]
//! ```
//!
//! Prints one line per epoch: network state, thresholds, memory division,
//! and loss-detection accuracy against the simulator's ground truth.

use chamelemon::config::DataPlaneConfig;
use chamelemon::ChameleMon;
use chm_workloads::{testbed_trace, LossPlan, VictimSelection, WorkloadKind};

struct Args {
    workload: WorkloadKind,
    flows: usize,
    victim_ratio: f64,
    loss_rate: f64,
    epochs: usize,
    seed: u64,
    paper_scale: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        workload: WorkloadKind::Dctcp,
        flows: 5_000,
        victim_ratio: 0.05,
        loss_rate: 0.01,
        epochs: 8,
        seed: 1,
        paper_scale: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--workload" => {
                let v = value("--workload")?;
                args.workload = match v.to_lowercase().as_str() {
                    "dctcp" => WorkloadKind::Dctcp,
                    "hadoop" => WorkloadKind::Hadoop,
                    "vl2" => WorkloadKind::Vl2,
                    "cache" => WorkloadKind::Cache,
                    other => return Err(format!("unknown workload {other}")),
                };
            }
            "--flows" => args.flows = value("--flows")?.parse().map_err(|e| format!("{e}"))?,
            "--victim-ratio" => {
                args.victim_ratio =
                    value("--victim-ratio")?.parse().map_err(|e| format!("{e}"))?
            }
            "--loss-rate" => {
                args.loss_rate = value("--loss-rate")?.parse().map_err(|e| format!("{e}"))?
            }
            "--epochs" => args.epochs = value("--epochs")?.parse().map_err(|e| format!("{e}"))?,
            "--seed" => args.seed = value("--seed")?.parse().map_err(|e| format!("{e}"))?,
            "--paper-scale" => args.paper_scale = true,
            "--help" | "-h" => {
                println!(
                    "usage: chamelemon-sim [--workload dctcp|hadoop|vl2|cache] [--flows N]\n\
                     \u{20}                     [--victim-ratio R] [--loss-rate R] [--epochs N]\n\
                     \u{20}                     [--seed S] [--paper-scale]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if !(0.0..=1.0).contains(&args.victim_ratio) || !(0.0..=1.0).contains(&args.loss_rate) {
        return Err("ratios must be within [0, 1]".into());
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e} (try --help)");
            std::process::exit(2);
        }
    };
    let cfg = if args.paper_scale {
        DataPlaneConfig::paper_default(args.seed)
    } else {
        DataPlaneConfig::small(args.seed)
    };
    let mut sys = ChameleMon::testbed(cfg);
    let trace = testbed_trace(args.workload, args.flows, 8, args.seed ^ 0xaa);
    let plan = LossPlan::build(
        &trace,
        VictimSelection::RandomRatio(args.victim_ratio),
        args.loss_rate,
        args.seed ^ 0xbb,
    );
    println!(
        "{} workload: {} flows / {} packets, {} planned victims\n",
        args.workload.name(),
        trace.num_flows(),
        trace.total_packets(),
        plan.num_victims()
    );
    println!(
        "{:>5} {:>8} {:>6} {:>6} {:>7} {:>22} {:>9} {:>9}",
        "epoch", "state", "Th", "Tl", "sample", "memory HH/HL/LL", "victims", "truth"
    );
    for _ in 0..args.epochs {
        let out = sys.run_epoch(&trace, &plan);
        let rt = &out.config_in_effect;
        let p = rt.partition;
        let exact = out
            .report
            .lost
            .iter()
            .filter(|(f, &l)| out.analysis.loss_report.get(f) == Some(&l))
            .count();
        println!(
            "{:>5} {:>8} {:>6} {:>6} {:>7.3} {:>8}/{:>6}/{:>5} {:>9} {:>9}",
            out.report.epoch,
            format!("{:?}", out.analysis.state_during),
            rt.th,
            rt.tl,
            rt.sample_rate(),
            p.m_hh,
            p.m_hl,
            p.m_ll,
            format!("{}({exact}=)", out.analysis.loss_report.len()),
            out.report.lost.len(),
        );
    }
}
