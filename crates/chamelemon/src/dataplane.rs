//! The per-edge-switch data plane (§3.2): flow classifier, upstream flow
//! encoder (HH/HL/LL), downstream flow encoder (HL/LL), LL sampling, and the
//! two-group epoch rotation of Appendix B.
//!
//! Every packet entering the network at this switch passes
//! classifier → hierarchy decision → upstream encoder; the 2-bit hierarchy
//! tag travels in the packet header (ToS bits, §3.2.3) so the egress switch
//! can pick the right downstream encoder without a classifier of its own.

use crate::config::{DataPlaneConfig, RuntimeConfig};
use chm_common::hash::PairwiseHash;
use chm_common::FlowId;
use chm_fermat::FermatSketch;
use chm_tower::TowerSketch;

/// Flow hierarchy assigned by the classifier (§3.2.1): the 2-bit tag
/// carried in the packet header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Hierarchy {
    /// Classifier size ≥ `Th`.
    HhCandidate,
    /// `Tl ≤ size < Th`.
    HlCandidate,
    /// `size < Tl`, selected by the sampler.
    SampledLl,
    /// `size < Tl`, not selected — not encoded anywhere.
    NonSampledLl,
}

impl Hierarchy {
    /// Encodes into the 2 header bits.
    pub fn to_tag(self) -> u8 {
        match self {
            Hierarchy::HhCandidate => 0,
            Hierarchy::HlCandidate => 1,
            Hierarchy::SampledLl => 2,
            Hierarchy::NonSampledLl => 3,
        }
    }

    /// Decodes from the 2 header bits.
    pub fn from_tag(tag: u8) -> Self {
        match tag & 0b11 {
            0 => Hierarchy::HhCandidate,
            1 => Hierarchy::HlCandidate,
            2 => Hierarchy::SampledLl,
            _ => Hierarchy::NonSampledLl,
        }
    }
}

/// Hash-seed salts distinguishing encoder roles. All switches share these,
/// which makes same-role encoders addable/subtractable network-wide.
mod salt {
    pub const HH: u64 = 0x48_48;
    pub const HL: u64 = 0x48_4c;
    pub const LL: u64 = 0x4c_4c;
}

/// One group of sketches (one of the two epoch-rotated copies).
///
/// `PartialEq` compares full sketch state (every counter, IDsum lane and
/// port counter) — the sharded-vs-unsharded differential suites assert
/// whole-group equality at every shard count.
#[derive(Debug, Clone, PartialEq)]
pub struct SketchGroup<F: FlowId> {
    /// The flow classifier.
    pub classifier: TowerSketch,
    /// Upstream HH encoder (`m_hh` buckets/array).
    pub up_hh: FermatSketch<F>,
    /// Upstream HL encoder (`m_hl`).
    pub up_hl: FermatSketch<F>,
    /// Upstream LL encoder (`m_ll`; zero-sized in the healthy state).
    pub up_ll: FermatSketch<F>,
    /// Downstream HL encoder (same geometry as upstream HL).
    pub down_hl: FermatSketch<F>,
    /// Downstream LL encoder (same geometry as upstream LL).
    pub down_ll: FermatSketch<F>,
    /// Packets that entered the network at this edge during the group's
    /// epoch — the switch's ingress port counter, collected alongside the
    /// sketches. With [`egress_pkts`](Self::egress_pkts) it surfaces the
    /// raw per-edge ingress/egress asymmetry (network-wide, ingress minus
    /// egress is the epoch's total loss) to operators and tests.
    pub ingress_pkts: u64,
    /// Packets that exited the network at this edge (fabric duplicates
    /// count twice, exactly as a real port counter would).
    pub egress_pkts: u64,
    /// The runtime configuration this group monitors under.
    pub runtime: RuntimeConfig,
}

impl<F: FlowId> SketchGroup<F> {
    fn new(cfg: &DataPlaneConfig, runtime: RuntimeConfig) -> Self {
        let p = runtime.partition;
        SketchGroup {
            classifier: TowerSketch::new(cfg.tower.clone()),
            up_hh: FermatSketch::new(cfg.fermat_for(p.m_hh, salt::HH)),
            up_hl: FermatSketch::new(cfg.fermat_for(p.m_hl, salt::HL)),
            up_ll: FermatSketch::new(cfg.fermat_for(p.m_ll, salt::LL)),
            down_hl: FermatSketch::new(cfg.fermat_for(p.m_hl, salt::HL)),
            down_ll: FermatSketch::new(cfg.fermat_for(p.m_ll, salt::LL)),
            ingress_pkts: 0,
            egress_pkts: 0,
            runtime,
        }
    }

    /// A zero-memory stand-in installed by [`EdgeDataPlane::take_group`]
    /// while the real group is away at the controller. Inserting into it
    /// panics (zero-bucket encoders), which makes any traffic arriving
    /// between collection and the epoch flip a loud bug instead of silent
    /// data loss.
    fn tombstone(cfg: &DataPlaneConfig, runtime: RuntimeConfig) -> Self {
        let tower = chm_tower::TowerConfig {
            levels: vec![chm_tower::TowerLevel { width: 1, bits: 8 }],
            seed: 0,
        };
        SketchGroup {
            classifier: TowerSketch::new(tower),
            up_hh: FermatSketch::new(cfg.fermat_for(0, salt::HH)),
            up_hl: FermatSketch::new(cfg.fermat_for(0, salt::HL)),
            up_ll: FermatSketch::new(cfg.fermat_for(0, salt::LL)),
            down_hl: FermatSketch::new(cfg.fermat_for(0, salt::HL)),
            down_ll: FermatSketch::new(cfg.fermat_for(0, salt::LL)),
            ingress_pkts: 0,
            egress_pkts: 0,
            runtime,
        }
    }

}

/// A snapshot of one group, as collected by the controller after the epoch
/// it monitored ends.
pub type CollectedGroup<F> = SketchGroup<F>;

/// The data plane of one edge switch.
#[derive(Debug, Clone)]
pub struct EdgeDataPlane<F: FlowId> {
    cfg: DataPlaneConfig,
    /// groups[0] monitors even-timestamp epochs, groups[1] odd.
    groups: [SketchGroup<F>; 2],
    /// Reconfiguration staged by the controller; applied to a group when it
    /// flips from "collected" to "monitoring" (§4.3: "the reconfiguration
    /// will not function immediately, but in the next epoch").
    pending: Option<RuntimeConfig>,
    /// The sampler's hash (shared network-wide so ingress decisions are
    /// consistent; egress trusts the header tag anyway).
    sample_hash: PairwiseHash,
}

impl<F: FlowId> EdgeDataPlane<F> {
    /// Builds a data plane with the initial runtime configuration.
    pub fn new(cfg: DataPlaneConfig, runtime: RuntimeConfig) -> Self {
        cfg.validate().expect("invalid static config");
        runtime.validate(&cfg).expect("invalid runtime config");
        let sample_hash = PairwiseHash::from_seed(cfg.seed ^ 0x5a3b_1e00);
        let groups = [
            SketchGroup::new(&cfg, runtime),
            SketchGroup::new(&cfg, runtime),
        ];
        EdgeDataPlane { cfg, groups, pending: None, sample_hash }
    }

    /// The static configuration.
    pub fn config(&self) -> &DataPlaneConfig {
        &self.cfg
    }

    /// The group monitoring epochs with timestamp bit `ts`.
    pub fn group(&self, ts: u8) -> &SketchGroup<F> {
        &self.groups[(ts & 1) as usize]
    }

    fn group_mut(&mut self, ts: u8) -> &mut SketchGroup<F> {
        &mut self.groups[(ts & 1) as usize]
    }

    /// Classifies and encodes a packet entering the network here; returns
    /// the hierarchy for the header tag (§3.2.1–3.2.2).
    // chm-lint: hot
    pub fn on_ingress(&mut self, f: &F, ts: u8) -> Hierarchy {
        let key = f.key64();
        let sample16 = self.sample_hash.sample16(key) as u32;
        let g = self.group_mut(ts);
        g.ingress_pkts += 1;
        let size = g.classifier.insert_and_query(key);
        let rt = &g.runtime;
        let h = if size >= rt.th {
            Hierarchy::HhCandidate
        } else if size >= rt.tl {
            Hierarchy::HlCandidate
        } else if sample16 < rt.sample_threshold {
            Hierarchy::SampledLl
        } else {
            Hierarchy::NonSampledLl
        };
        match h {
            Hierarchy::HhCandidate => g.up_hh.insert_keyed(f, key),
            Hierarchy::HlCandidate => g.up_hl.insert_keyed(f, key),
            Hierarchy::SampledLl => g.up_ll.insert_keyed(f, key),
            Hierarchy::NonSampledLl => {}
        }
        h
    }

    /// Encodes a packet exiting the network here, per the carried tag.
    /// HH candidates are encoded into the **downstream HL encoder**
    /// (§3.2.3: "packets of HH candidates are also encoded into the
    /// downstream HL encoder").
    #[inline]
    // chm-lint: hot
    pub fn on_egress(&mut self, f: &F, ts: u8, h: Hierarchy) {
        self.on_egress_burst(f, ts, h, 1);
    }

    /// Classifies and encodes a **burst** of `n` consecutive packets of
    /// flow `f` entering the network here — the batched form of
    /// [`on_ingress`](Self::on_ingress), with identical resulting sketch
    /// state (see [`TowerSketch::insert_burst`]).
    ///
    /// Returns the burst's hierarchy segments **in packet order** (the
    /// classifier size is non-decreasing within a burst, so a burst always
    /// splits LL → HL → HH); segments with zero packets are included so the
    /// caller can index positionally. The egress switch replays the
    /// segments through [`on_egress_burst`](Self::on_egress_burst) with its
    /// delivered counts.
    // chm-lint: hot
    pub fn on_ingress_burst(&mut self, f: &F, ts: u8, n: u64) -> [(Hierarchy, u64); 3] {
        let key = f.key64();
        let sample16 = self.sample_hash.sample16(key) as u32;
        let g = self.group_mut(ts);
        g.ingress_pkts += n;
        let rt = &g.runtime;
        let (th, tl, sampled) = (rt.th, rt.tl, sample16 < rt.sample_threshold);
        let (n_ll, n_hl, n_hh) = g.classifier.insert_burst(key, n, tl, th);
        if n_hh > 0 {
            g.up_hh.insert_weighted_keyed(f, key, n_hh as i64);
        }
        if n_hl > 0 {
            g.up_hl.insert_weighted_keyed(f, key, n_hl as i64);
        }
        let ll_tag = if sampled {
            if n_ll > 0 {
                g.up_ll.insert_weighted_keyed(f, key, n_ll as i64);
            }
            Hierarchy::SampledLl
        } else {
            Hierarchy::NonSampledLl
        };
        [
            (ll_tag, n_ll),
            (Hierarchy::HlCandidate, n_hl),
            (Hierarchy::HhCandidate, n_hh),
        ]
    }

    /// Encodes `delivered` packets of one hierarchy segment exiting the
    /// network here — the batched form of [`on_egress`](Self::on_egress).
    #[inline]
    // chm-lint: hot
    pub fn on_egress_burst(&mut self, f: &F, ts: u8, h: Hierarchy, delivered: u64) {
        if delivered == 0 {
            return;
        }
        let g = self.group_mut(ts);
        g.egress_pkts += delivered;
        match h {
            Hierarchy::HhCandidate | Hierarchy::HlCandidate => {
                g.down_hl.insert_weighted_keyed(f, f.key64(), delivered as i64)
            }
            Hierarchy::SampledLl => {
                g.down_ll.insert_weighted_keyed(f, f.key64(), delivered as i64)
            }
            Hierarchy::NonSampledLl => {}
        }
    }

    /// Controller staging: the next flip applies this runtime to the group
    /// that begins monitoring.
    pub fn stage_runtime(&mut self, rt: RuntimeConfig) {
        rt.validate(&self.cfg).expect("invalid staged runtime");
        self.pending = Some(rt);
    }

    /// Collects (snapshots) the group that monitored epochs with timestamp
    /// `ts` by **cloning** — the inspection-friendly path for tests and
    /// offline analysis. The epoch pipeline uses the zero-clone
    /// [`take_group`](Self::take_group) instead.
    pub fn collect_group(&self, ts: u8) -> CollectedGroup<F> {
        self.group(ts).clone()
    }

    /// Hands the controller **ownership** of the group that monitored
    /// timestamp `ts`, leaving a zero-memory tombstone in its place — no
    /// sketch is copied. The caller must [`flip`](Self::flip) before traffic
    /// with this timestamp bit arrives again (inserting into the tombstone
    /// panics).
    pub fn take_group(&mut self, ts: u8) -> CollectedGroup<F> {
        let slot = (ts & 1) as usize;
        let rt = self.groups[slot].runtime;
        std::mem::replace(&mut self.groups[slot], SketchGroup::tombstone(&self.cfg, rt))
    }

    /// Epoch flip: the group that monitored timestamp `ended_ts` has been
    /// collected; reset it, and install any staged reconfiguration on
    /// **both** groups — the other group is empty (it was collected and
    /// reset at the previous flip) and begins monitoring the next epoch
    /// right now, which is exactly when the paper's updated table entries
    /// (matching the next timestamp value) start functioning (§4.3, §D.2).
    ///
    /// Allocation discipline: the ended slot (collected, or a
    /// [`take_group`](Self::take_group) tombstone) is always rebuilt; the
    /// idle group is rebuilt only when the staged runtime actually changed,
    /// so a steady-state epoch rotates with a single group construction
    /// instead of the two rebuilds plus a deep snapshot clone of earlier
    /// revisions.
    ///
    /// The idle group is usually empty at the flip (it was collected and
    /// reset one epoch ago), but **clock skew legitimately violates that**:
    /// an edge whose clock lags stamps early next-epoch packets with the
    /// next timestamp bit, landing them in the idle group before the flip
    /// (Appendix B). Those early packets are preserved when the runtime is
    /// unchanged and wiped when a reconfiguration rebuilds the group — the
    /// same fate a real table rewrite hands them.
    pub fn flip(&mut self, ended_ts: u8) {
        let rt = self.pending.take().unwrap_or(self.group(ended_ts).runtime);
        let ended = (ended_ts & 1) as usize;
        let other = 1 - ended;
        self.groups[ended] = SketchGroup::new(&self.cfg, rt);
        if self.groups[other].runtime != rt {
            self.groups[other] = SketchGroup::new(&self.cfg, rt);
        }
    }
}

/// The data plane as a shard-ownable measurement site: this is what lets
/// `chm_netsim::ShardedReplay` drive ChameleMon edges directly (and, via
/// [`chm_netsim::SiteArray`], what the serial replay paths use too — the
/// adapter that used to be copied into every consumer crate).
///
/// The 2-bit wire tag is the [`Hierarchy`] encoding of §3.2.3; ingress
/// returns it, egress decodes it — exactly the ToS-field contract between a
/// real ingress and egress pipeline.
impl<F: FlowId> chm_netsim::EdgeSite<F> for EdgeDataPlane<F> {
    // chm-lint: hot
    fn site_ingress(&mut self, f: &F, ts_bit: u8) -> u8 {
        self.on_ingress(f, ts_bit).to_tag()
    }

    // chm-lint: hot
    fn site_egress(&mut self, f: &F, ts_bit: u8, tag: u8) {
        self.on_egress(f, ts_bit, Hierarchy::from_tag(tag));
    }

    // chm-lint: hot
    fn site_ingress_burst(&mut self, f: &F, ts_bit: u8, pkts: u64) -> [(u8, u64); 3] {
        self.on_ingress_burst(f, ts_bit, pkts).map(|(h, n)| (h.to_tag(), n))
    }

    // chm-lint: hot
    fn site_egress_burst(&mut self, f: &F, ts_bit: u8, tag: u8, delivered: u64) {
        self.on_egress_burst(f, ts_bit, Hierarchy::from_tag(tag), delivered);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Partition;

    fn dp(seed: u64) -> EdgeDataPlane<u32> {
        let cfg = DataPlaneConfig::small(seed);
        let rt = RuntimeConfig::initial(&cfg);
        EdgeDataPlane::new(cfg, rt)
    }

    #[test]
    fn tag_roundtrip() {
        for h in [
            Hierarchy::HhCandidate,
            Hierarchy::HlCandidate,
            Hierarchy::SampledLl,
            Hierarchy::NonSampledLl,
        ] {
            assert_eq!(Hierarchy::from_tag(h.to_tag()), h);
        }
    }

    #[test]
    fn initial_state_classifies_everything_hh() {
        // Th = 1: every flow's first packet already reaches size 1 ≥ Th.
        let mut d = dp(1);
        let h = d.on_ingress(&42, 0);
        assert_eq!(h, Hierarchy::HhCandidate);
        let r = d.group(0).up_hh.decode();
        assert_eq!(r.flows.get(&42), Some(&1));
    }

    #[test]
    fn thresholds_route_to_hierarchies() {
        let cfg = DataPlaneConfig::small(2);
        let mut rt = RuntimeConfig::initial(&cfg);
        rt.partition = Partition { m_hh: 128, m_hl: 320, m_ll: 64 };
        rt.th = 10;
        rt.tl = 3;
        let mut d = EdgeDataPlane::<u32>::new(cfg, rt);
        // Packets 1-2: size < 3 -> LL (sampled; rate 1.0).
        assert_eq!(d.on_ingress(&7, 0), Hierarchy::SampledLl);
        assert_eq!(d.on_ingress(&7, 0), Hierarchy::SampledLl);
        // Packets 3-9: HL candidate.
        for _ in 3..10 {
            assert_eq!(d.on_ingress(&7, 0), Hierarchy::HlCandidate);
        }
        // Packet 10+: HH candidate.
        assert_eq!(d.on_ingress(&7, 0), Hierarchy::HhCandidate);
        let g = d.group(0);
        assert_eq!(g.up_ll.decode().flows.get(&7), Some(&2));
        assert_eq!(g.up_hl.decode().flows.get(&7), Some(&7));
        assert_eq!(g.up_hh.decode().flows.get(&7), Some(&1));
    }

    #[test]
    fn sampling_threshold_zero_drops_all_ll() {
        let cfg = DataPlaneConfig::small(3);
        let mut rt = RuntimeConfig::initial(&cfg);
        rt.partition = Partition { m_hh: 128, m_hl: 320, m_ll: 64 };
        rt.th = 100;
        rt.tl = 100; // everything below 100 is LL
        rt.sample_threshold = 0; // sample nothing
        let mut d = EdgeDataPlane::<u32>::new(cfg, rt);
        for f in 0..50u32 {
            assert_eq!(d.on_ingress(&f, 0), Hierarchy::NonSampledLl);
        }
        assert!(d.group(0).up_ll.is_zero());
    }

    #[test]
    fn egress_routes_hh_to_down_hl() {
        let mut d = dp(4);
        d.on_egress(&9, 0, Hierarchy::HhCandidate);
        d.on_egress(&9, 0, Hierarchy::HlCandidate);
        let g = d.group(0);
        assert_eq!(g.down_hl.decode().flows.get(&9), Some(&2));
        assert!(g.down_ll.is_zero());
    }

    #[test]
    fn groups_are_isolated_by_timestamp() {
        let mut d = dp(5);
        d.on_ingress(&1, 0);
        d.on_ingress(&2, 1);
        assert_eq!(d.group(0).up_hh.decode().flows.len(), 1);
        assert_eq!(d.group(1).up_hh.decode().flows.len(), 1);
        assert!(d.group(0).up_hh.decode().flows.contains_key(&1));
        assert!(d.group(1).up_hh.decode().flows.contains_key(&2));
    }

    #[test]
    fn flip_clears_and_applies_staged_runtime() {
        let mut d = dp(6);
        d.on_ingress(&1, 0);
        let cfg = d.config().clone();
        let mut rt = RuntimeConfig::initial(&cfg);
        rt.th = 77;
        d.stage_runtime(rt);
        d.flip(0);
        assert!(d.group(0).up_hh.is_zero(), "group must be reset");
        assert_eq!(d.group(0).runtime.th, 77, "staged config must apply");
        // The idle group starts monitoring the next epoch under the new
        // configuration too (next-epoch semantics, §4.3).
        assert_eq!(d.group(1).runtime.th, 77);
    }

    #[test]
    fn burst_ingress_is_equivalent_to_per_packet() {
        // The burst path must leave the data plane in exactly the state the
        // per-packet path produces, for every threshold regime.
        let cfg = DataPlaneConfig::small(11);
        for (th, tl, sample_threshold) in
            [(1u64, 1u64, 65_536u32), (10, 3, 65_536), (10, 3, 0), (100, 100, 20_000)]
        {
            let mut rt = RuntimeConfig::initial(&cfg);
            rt.partition = Partition { m_hh: 128, m_hl: 320, m_ll: 64 };
            rt.th = th;
            rt.tl = tl;
            rt.sample_threshold = sample_threshold;
            let mut per_packet = EdgeDataPlane::<u32>::new(cfg.clone(), rt);
            let mut burst = EdgeDataPlane::<u32>::new(cfg.clone(), rt);
            for round in 0..40u32 {
                for f in 0..25u32 {
                    let n = 1 + ((f as u64 + round as u64) % 9);
                    let mut tags = Vec::new();
                    for _ in 0..n {
                        tags.push(per_packet.on_ingress(&f, 0));
                    }
                    let segs = burst.on_ingress_burst(&f, 0, n);
                    // Segment view must match the per-packet tag sequence.
                    let flat: Vec<Hierarchy> = segs
                        .iter()
                        .flat_map(|&(h, c)| std::iter::repeat_n(h, c as usize))
                        .collect();
                    assert_eq!(tags, flat, "f={f} n={n} th={th} tl={tl}");
                    // Egress: drop the first packet of each burst.
                    for (i, &h) in tags.iter().enumerate() {
                        if i > 0 {
                            per_packet.on_egress(&f, 0, h);
                        }
                    }
                    let mut pos = 0u64;
                    for &(h, c) in &segs {
                        let dropped = u64::from(pos == 0 && c > 0);
                        burst.on_egress_burst(&f, 0, h, c - dropped);
                        pos += c;
                    }
                }
            }
            let (a, b) = (per_packet.group(0), burst.group(0));
            assert_eq!(a.classifier, b.classifier, "classifier th={th} tl={tl}");
            assert_eq!(a.up_hh, b.up_hh, "up_hh");
            assert_eq!(a.up_hl, b.up_hl, "up_hl");
            assert_eq!(a.up_ll, b.up_ll, "up_ll");
            assert_eq!(a.down_hl, b.down_hl, "down_hl");
            assert_eq!(a.down_ll, b.down_ll, "down_ll");
        }
    }

    #[test]
    fn take_group_hands_over_ownership_without_copying() {
        let mut d = dp(9);
        d.on_ingress(&5, 0);
        let taken = d.take_group(0);
        assert_eq!(taken.up_hh.decode().flows.get(&5), Some(&1));
        // The tombstone left behind holds nothing and has zero encoder
        // memory; the flip rebuilds a real group.
        assert!(d.group(0).up_hh.is_zero());
        assert_eq!(d.group(0).up_hh.config().buckets_per_array, 0);
        d.flip(0);
        assert!(d.group(0).up_hh.config().buckets_per_array > 0);
        let h = d.on_ingress(&6, 0);
        assert_eq!(h, Hierarchy::HhCandidate);
    }

    #[test]
    fn take_then_flip_matches_collect_then_flip() {
        // The zero-clone path must be observationally identical to the
        // cloning path.
        let mut a = dp(10);
        let mut b = dp(10);
        for f in 0..50u32 {
            a.on_ingress(&f, 0);
            b.on_ingress(&f, 0);
        }
        let via_take = a.take_group(0);
        let via_clone = b.collect_group(0);
        assert_eq!(
            via_take.up_hh.decode().flows,
            via_clone.up_hh.decode().flows
        );
        a.flip(0);
        b.flip(0);
        assert_eq!(a.group(0).runtime, b.group(0).runtime);
        assert!(a.group(0).up_hh.is_zero() && b.group(0).up_hh.is_zero());
    }

    #[test]
    fn upstream_downstream_encoders_are_compatible_across_switches() {
        // Two different switches, same config: their HL encoders must be
        // addable/subtractable (identical hash functions & geometry).
        let a = dp(7);
        let b = dp(7);
        assert!(a.group(0).up_hl.compatible(&b.group(0).down_hl));
    }

    #[test]
    fn loss_detection_end_to_end_single_switch() {
        let mut d = dp(8);
        // 100 flows × 5 packets; flows 0..10 lose 2 packets each.
        for f in 0..100u32 {
            for i in 0..5 {
                let h = d.on_ingress(&f, 0);
                let dropped = f < 10 && i < 2;
                if !dropped {
                    d.on_egress(&f, 0, h);
                }
            }
        }
        let g = d.collect_group(0);
        // Healthy initial config: everything is a HH candidate; reinsert HH
        // flowset into up_hl, then delta = up_hl - down_hl.
        let hh = g.up_hh.decode();
        assert!(hh.success);
        let mut up_hl = g.up_hl.clone();
        for (f, c) in &hh.flows {
            up_hl.insert_weighted(f, *c);
        }
        up_hl.sub_assign_sketch(&g.down_hl);
        let delta = up_hl.decode();
        assert!(delta.success);
        assert_eq!(delta.flows.len(), 10);
        for (f, lost) in delta.flows {
            assert!(f < 10);
            assert_eq!(lost, 2);
        }
    }
}
