//! The seven measurement tasks (§4.2), computed from the collected
//! classifier + upstream HH encoder (accumulation tasks) and the decoded
//! delta encoders (packet loss detection, already part of
//! [`crate::control::EpochAnalysis`]).
//!
//! All tasks are *network-wide*: per-switch results are synthesized by
//! summing (distribution, cardinality) or maxing (flow size — a flow is
//! only inserted at its ingress switch).

use crate::control::EpochAnalysis;
use crate::dataplane::CollectedGroup;
use chm_common::metrics::size_entropy;
use chm_common::FlowId;
use std::collections::{HashMap, HashSet};

/// Heavy-hitter detection: flows whose estimated size `Th + q` exceeds
/// `delta_h` (§4.2). Returns flow → estimated size, network-wide.
pub fn heavy_hitters<F: FlowId>(
    a: &EpochAnalysis<F>,
    delta_h: u64,
) -> HashMap<F, u64> {
    let th = a.runtime.th;
    let mut out = HashMap::new();
    for set in &a.hh_flowsets {
        for (f, &q) in set {
            let est = th + q.max(0) as u64;
            if est > delta_h {
                let e = out.entry(*f).or_insert(0);
                *e = (*e).max(est);
            }
        }
    }
    out
}

/// Flow size estimation (§4.2): `Th + q` if the flow is in a HH flowset,
/// otherwise the classifier query at its ingress switch (max over switches,
/// since only the ingress classifier saw it).
pub fn flow_size<F: FlowId>(
    a: &EpochAnalysis<F>,
    collected: &[CollectedGroup<F>],
    f: &F,
) -> u64 {
    for set in &a.hh_flowsets {
        if let Some(&q) = set.get(f) {
            return a.runtime.th + q.max(0) as u64;
        }
    }
    collected
        .iter()
        .map(|g| g.classifier.query_clamped(f.key64()))
        .max()
        .unwrap_or(0)
}

/// Heavy-change detection (§4.2): flows whose estimated sizes differ by
/// more than `delta_c` between two adjacent epochs. Candidates are drawn
/// from either epoch's HH flowsets.
pub fn heavy_changes<F: FlowId>(
    prev: &EpochAnalysis<F>,
    prev_collected: &[CollectedGroup<F>],
    cur: &EpochAnalysis<F>,
    cur_collected: &[CollectedGroup<F>],
    delta_c: u64,
) -> HashSet<F> {
    let mut candidates: HashSet<F> = HashSet::new();
    for set in prev.hh_flowsets.iter().chain(cur.hh_flowsets.iter()) {
        candidates.extend(set.keys().copied());
    }
    candidates
        .into_iter()
        .filter(|f| {
            let a = flow_size(prev, prev_collected, f);
            let b = flow_size(cur, cur_collected, f);
            a.abs_diff(b) > delta_c
        })
        .collect()
}

/// Cardinality estimation (§4.2): linear counting on the widest classifier
/// array, summed over ingress switches.
pub fn cardinality<F: FlowId>(collected: &[CollectedGroup<F>]) -> f64 {
    collected.iter().map(|g| g.classifier.cardinality_estimate()).sum()
}

/// Flow size distribution (§4.2): the analysis already aggregates MRAC over
/// levels and switches; re-exported here for the task-oriented API.
pub fn flow_size_distribution<F: FlowId>(a: &EpochAnalysis<F>) -> &[f64] {
    &a.flow_size_dist
}

/// Entropy estimation (§4.2): from the estimated flow-size distribution.
pub fn entropy<F: FlowId>(a: &EpochAnalysis<F>) -> f64 {
    size_entropy(&a.flow_size_dist)
}

/// Packet loss detection (§4.2): victim flow → estimated lost packets.
/// (The analysis computes it; re-exported for the task-oriented API.)
pub fn packet_losses<F: FlowId>(a: &EpochAnalysis<F>) -> &HashMap<F, u64> {
    &a.loss_report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DataPlaneConfig, RuntimeConfig};
    use crate::control::Controller;
    use crate::dataplane::EdgeDataPlane;

    /// Drives a single-switch deployment for one epoch by hand.
    fn one_epoch(
        flows: &[(u32, u64)],
        lost: &HashMap<u32, u64>,
    ) -> (Controller<u32>, EpochAnalysis<u32>, Vec<CollectedGroup<u32>>) {
        let cfg = DataPlaneConfig::small(42);
        let rt = RuntimeConfig::initial(&cfg);
        let mut dp = EdgeDataPlane::<u32>::new(cfg.clone(), rt);
        for &(f, pkts) in flows {
            let n_lost = lost.get(&f).copied().unwrap_or(0);
            for i in 0..pkts {
                let h = dp.on_ingress(&f, 0);
                if i >= n_lost {
                    dp.on_egress(&f, 0, h);
                }
            }
        }
        let collected = vec![dp.collect_group(0)];
        let ctl = Controller::new(cfg);
        let analysis = ctl.analyze_epoch(&collected);
        (ctl, analysis, collected)
    }

    #[test]
    fn loss_detection_reports_victims_exactly() {
        let flows: Vec<(u32, u64)> = (0..200).map(|f| (f, 5 + (f as u64 % 7))).collect();
        let lost: HashMap<u32, u64> = (0..20u32).map(|f| (f, 2)).collect();
        let (_, analysis, _) = one_epoch(&flows, &lost);
        assert_eq!(*packet_losses(&analysis), lost);
    }

    #[test]
    fn heavy_hitters_found_with_exact_sizes() {
        let mut flows: Vec<(u32, u64)> = (0..100).map(|f| (f, 3)).collect();
        flows.push((900, 500));
        flows.push((901, 800));
        let (_, analysis, _) = one_epoch(&flows, &HashMap::new());
        let hh = heavy_hitters(&analysis, 400);
        assert_eq!(hh.len(), 2);
        // Initial Th = 1: estimated size = 1 + (pkts - 1)... the first
        // packet makes size 1 >= Th so all packets are in the HH encoder;
        // estimate = Th + q = 1 + 500? No: q counts *all* packets (every
        // packet of the flow was a HH candidate), so est = 500 + 1.
        let e900 = hh[&900];
        assert!((500..=501).contains(&e900), "est {e900}");
    }

    #[test]
    fn flow_size_estimation_close() {
        let flows: Vec<(u32, u64)> = (0..150).map(|f| (f, 1 + (f as u64 % 20))).collect();
        let (_, analysis, collected) = one_epoch(&flows, &HashMap::new());
        for &(f, true_size) in flows.iter().step_by(13) {
            let est = flow_size(&analysis, &collected, &f);
            assert!(
                est >= true_size && est <= true_size + 2,
                "flow {f}: est {est} vs {true_size}"
            );
        }
    }

    #[test]
    fn cardinality_tracks_flow_count() {
        let flows: Vec<(u32, u64)> = (0..400).map(|f| (f, 2)).collect();
        let (_, _, collected) = one_epoch(&flows, &HashMap::new());
        let est = cardinality(&collected);
        assert!((est - 400.0).abs() < 60.0, "estimate {est}");
    }

    #[test]
    fn entropy_positive_for_mixed_sizes() {
        let flows: Vec<(u32, u64)> = (0..300).map(|f| (f, 1 + (f as u64 % 5))).collect();
        let (_, analysis, _) = one_epoch(&flows, &HashMap::new());
        let h = entropy(&analysis);
        assert!(h > 0.0);
    }

    #[test]
    fn heavy_changes_detect_size_jumps() {
        let flows_a: Vec<(u32, u64)> = vec![(1, 500), (2, 500), (3, 10)];
        let flows_b: Vec<(u32, u64)> = vec![(1, 500), (2, 20), (3, 480)];
        let (_, a1, c1) = one_epoch(&flows_a, &HashMap::new());
        let (_, a2, c2) = one_epoch(&flows_b, &HashMap::new());
        let changes = heavy_changes(&a1, &c1, &a2, &c2, 250);
        assert!(changes.contains(&2), "flow 2 shrank by 480");
        assert!(changes.contains(&3), "flow 3 grew by 470");
        assert!(!changes.contains(&1), "flow 1 unchanged");
    }
}
