//! Static and runtime configuration of the ChameleMon data plane.
//!
//! The **static** configuration ([`DataPlaneConfig`]) is fixed at compile
//! time on the switch: total buckets per array of the upstream (`m_uf`) and
//! downstream (`m_df`) flow encoders, classifier geometry, hash seeds.
//!
//! The **runtime** configuration ([`RuntimeConfig`]) is what the controller
//! rewrites every epoch *without recompilation* (§4.3): how the physical
//! encoders are partitioned into HH/HL/LL encoders, the classification
//! thresholds `Th`/`Tl`, and the LL sample rate.

use chm_fermat::FermatConfig;
use chm_tower::TowerConfig;

/// Static, compile-time data-plane parameters (§5.2 defaults).
#[derive(Debug, Clone, PartialEq)]
pub struct DataPlaneConfig {
    /// Flow classifier geometry.
    pub tower: TowerConfig,
    /// Number of bucket arrays `d` in every Fermat encoder (3 for the
    /// highest memory efficiency, §5.2).
    pub arrays: usize,
    /// Buckets per array of the upstream flow encoder (`m_uf`, default 4096).
    pub m_uf: usize,
    /// Buckets per array of the downstream flow encoder (`m_df`, default
    /// 3072; must satisfy `m_df ≤ m_uf`).
    pub m_df: usize,
    /// Optional fingerprint bits in every encoder (§A.4; 0 on the testbed).
    pub fingerprint_bits: u32,
    /// Minimum buckets/array reserved for the HL encoders in the healthy
    /// state (512 on the testbed) — "to handle the potential small burst of
    /// victim flows" (§4.3.1).
    pub min_hl_buckets: usize,
    /// The fixed ill-state partition (testbed: HH 1024 / HL 2560 / LL 512).
    pub ill_partition: Partition,
    /// Master hash seed shared by every switch (upstream and downstream
    /// encoders must use identical hash functions, §3.1).
    pub seed: u64,
}

impl DataPlaneConfig {
    /// The §5.2 testbed parameter settings.
    pub fn paper_default(seed: u64) -> Self {
        DataPlaneConfig {
            tower: TowerConfig::paper_default(seed ^ 0x7031),
            arrays: 3,
            m_uf: 4096,
            m_df: 3072,
            fingerprint_bits: 0,
            min_hl_buckets: 512,
            ill_partition: Partition { m_hh: 1024, m_hl: 2560, m_ll: 512 },
            seed,
        }
    }

    /// A proportionally scaled-down configuration for fast tests/examples
    /// (1/8 of the testbed sizes).
    pub fn small(seed: u64) -> Self {
        DataPlaneConfig {
            tower: TowerConfig::sized(8192, seed ^ 0x7031),
            arrays: 3,
            m_uf: 512,
            m_df: 384,
            fingerprint_bits: 0,
            min_hl_buckets: 64,
            ill_partition: Partition { m_hh: 128, m_hl: 320, m_ll: 64 },
            seed,
        }
    }

    /// Validates the invariants the data plane relies on.
    pub fn validate(&self) -> Result<(), String> {
        if self.arrays == 0 {
            return Err("arrays must be >= 1".into());
        }
        if self.m_df > self.m_uf {
            return Err(format!("m_df {} > m_uf {}", self.m_df, self.m_uf));
        }
        let ill = &self.ill_partition;
        if ill.total() != self.m_uf {
            return Err(format!(
                "ill partition {} != m_uf {}",
                ill.total(),
                self.m_uf
            ));
        }
        if ill.m_hl + ill.m_ll > self.m_df {
            return Err("ill HL+LL exceeds downstream encoder".into());
        }
        if self.min_hl_buckets > self.m_df {
            return Err("min_hl_buckets exceeds m_df".into());
        }
        Ok(())
    }

    /// Fermat configuration for an encoder partition of `m` buckets/array
    /// with a role-specific salt (so HH/HL/LL use distinct hash functions
    /// but all switches share them).
    pub fn fermat_for(&self, m: usize, role_salt: u64) -> FermatConfig {
        FermatConfig {
            arrays: self.arrays,
            buckets_per_array: m,
            fingerprint_bits: self.fingerprint_bits,
            seed: self.seed ^ role_salt,
        }
    }
}

/// A division of the upstream flow encoder into HH/HL/LL encoders
/// (`m_hh + m_hl + m_ll = m_uf`); the downstream encoder holds the HL and LL
/// parts only (`m_hl + m_ll ≤ m_df`), §3.2.2–3.2.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Partition {
    /// Buckets/array of the HH encoder (upstream only).
    pub m_hh: usize,
    /// Buckets/array of the HL encoders (upstream + downstream).
    pub m_hl: usize,
    /// Buckets/array of the LL encoders (upstream + downstream).
    pub m_ll: usize,
}

impl Partition {
    /// Total upstream buckets/array used.
    pub fn total(&self) -> usize {
        self.m_hh + self.m_hl + self.m_ll
    }
}

/// Runtime-reconfigurable state (§4.3). One instance is deployed network-
/// wide; reconfigurations take effect at the next epoch flip.
///
/// `Copy`: this is a handful of scalars — the epoch pipeline passes it by
/// value instead of cloning through `Arc` indirection, so sharing the
/// deployed configuration across edges and sketch groups is free.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RuntimeConfig {
    /// Current encoder partition.
    pub partition: Partition,
    /// HH-candidate threshold `Th` (flows with classifier size ≥ `Th`).
    pub th: u64,
    /// HL-candidate threshold `Tl` (flows with classifier size < `Tl` are LL
    /// candidates; `1 ≤ Tl ≤ Th`; `Tl = 1` in the healthy state).
    pub tl: u64,
    /// LL sampling threshold quantized to 16 bits: a LL candidate is sampled
    /// iff `hash16(flow) < sample_threshold` (§D.1). `65536` = sample all.
    pub sample_threshold: u32,
}

impl RuntimeConfig {
    /// The initial (healthy, maximum-attention-to-accumulation) runtime:
    /// no LL encoder, minimum reserved HL memory, `Th = Tl = 1`.
    pub fn initial(cfg: &DataPlaneConfig) -> Self {
        RuntimeConfig {
            partition: Partition {
                m_hh: cfg.m_uf - cfg.min_hl_buckets,
                m_hl: cfg.min_hl_buckets,
                m_ll: 0,
            },
            th: 1,
            tl: 1,
            sample_threshold: 65_536,
        }
    }

    /// The effective LL sample rate in `[0, 1]`.
    pub fn sample_rate(&self) -> f64 {
        self.sample_threshold as f64 / 65_536.0
    }

    /// Sets the sample threshold from a desired rate (`ceil(65536·R)`).
    pub fn set_sample_rate(&mut self, rate: f64) {
        let r = rate.clamp(0.0, 1.0);
        self.sample_threshold = ((65_536.0 * r).ceil() as u32).min(65_536);
    }

    /// Validates against the static configuration.
    pub fn validate(&self, cfg: &DataPlaneConfig) -> Result<(), String> {
        if self.partition.total() != cfg.m_uf {
            return Err(format!(
                "partition total {} != m_uf {}",
                self.partition.total(),
                cfg.m_uf
            ));
        }
        if self.partition.m_hl + self.partition.m_ll > cfg.m_df {
            return Err("HL+LL exceeds downstream encoder".into());
        }
        if self.tl > self.th {
            return Err(format!("Tl {} > Th {}", self.tl, self.th));
        }
        if self.tl == 0 || self.th == 0 {
            return Err("thresholds must be >= 1".into());
        }
        if self.sample_threshold > 65_536 {
            return Err("sample threshold > 65536".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_valid() {
        let cfg = DataPlaneConfig::paper_default(1);
        cfg.validate().unwrap();
        RuntimeConfig::initial(&cfg).validate(&cfg).unwrap();
    }

    #[test]
    fn small_is_valid() {
        let cfg = DataPlaneConfig::small(1);
        cfg.validate().unwrap();
        RuntimeConfig::initial(&cfg).validate(&cfg).unwrap();
    }

    #[test]
    fn initial_runtime_shape() {
        let cfg = DataPlaneConfig::paper_default(2);
        let rt = RuntimeConfig::initial(&cfg);
        assert_eq!(rt.partition.m_ll, 0);
        assert_eq!(rt.partition.m_hl, 512);
        assert_eq!(rt.partition.m_hh, 4096 - 512);
        assert_eq!(rt.th, 1);
        assert_eq!(rt.tl, 1);
        assert_eq!(rt.sample_rate(), 1.0);
    }

    #[test]
    fn sample_rate_quantization() {
        let cfg = DataPlaneConfig::paper_default(3);
        let mut rt = RuntimeConfig::initial(&cfg);
        rt.set_sample_rate(0.5);
        assert_eq!(rt.sample_threshold, 32_768);
        rt.set_sample_rate(1e-9);
        assert_eq!(rt.sample_threshold, 1); // ceil keeps tiny rates non-zero
        rt.set_sample_rate(2.0);
        assert_eq!(rt.sample_threshold, 65_536);
    }

    #[test]
    fn invalid_partitions_rejected() {
        let cfg = DataPlaneConfig::paper_default(4);
        let mut rt = RuntimeConfig::initial(&cfg);
        rt.partition.m_hh += 1;
        assert!(rt.validate(&cfg).is_err());

        let mut rt2 = RuntimeConfig::initial(&cfg);
        rt2.partition = Partition { m_hh: 0, m_hl: 4096, m_ll: 0 };
        assert!(rt2.validate(&cfg).is_err(), "HL beyond m_df must fail");

        let mut rt3 = RuntimeConfig::initial(&cfg);
        rt3.tl = 5;
        rt3.th = 2;
        assert!(rt3.validate(&cfg).is_err());
    }

    #[test]
    fn bad_static_configs_rejected() {
        let mut cfg = DataPlaneConfig::paper_default(5);
        cfg.m_df = cfg.m_uf + 1;
        assert!(cfg.validate().is_err());

        let mut cfg2 = DataPlaneConfig::paper_default(6);
        cfg2.ill_partition.m_hh += 8;
        assert!(cfg2.validate().is_err());
    }

    #[test]
    fn fermat_configs_differ_by_role_but_share_across_switches() {
        let cfg_a = DataPlaneConfig::paper_default(7);
        let cfg_b = DataPlaneConfig::paper_default(7);
        // Same role on two "switches": identical (required for add/sub).
        assert_eq!(cfg_a.fermat_for(100, 1), cfg_b.fermat_for(100, 1));
        // Different roles: different hash seeds.
        assert_ne!(cfg_a.fermat_for(100, 1).seed, cfg_a.fermat_for(100, 2).seed);
    }
}
