//! The ChameleMon control plane (§4): collection analysis, the seven
//! measurement tasks' inputs, and — the heart of the paper — the
//! attention-shifting state machine of §4.3.
//!
//! Every epoch the controller:
//! 1. decodes each switch's upstream HH encoder (HH flowsets);
//! 2. re-inserts decoded HH flows into the upstream HL encoders, builds the
//!    cumulative upstream/downstream HL and LL encoders across switches,
//!    subtracts, and decodes the **delta** encoders — whose flowsets are the
//!    victim flows (§4.2 "Packet loss detection");
//! 3. estimates the real-time network state (#flows, flow-size
//!    distribution, #victim flows) with linear counting + MRAC fallbacks;
//! 4. reconfigures the data plane — memory division, `Th`, `Tl`, sample
//!    rate — targeting ~70% load factor on every Fermat encoder, moving
//!    between the **healthy** and **ill** network states (§4.3.1–4.3.2).

use crate::config::{DataPlaneConfig, Partition, RuntimeConfig};
use crate::dataplane::CollectedGroup;
use crate::localize::{
    EpochEvidence, Localization, Localizer, LocalizerSnapshot, PARTIAL_DECODE_CONFIDENCE,
};
use chm_common::hash::PairwiseHash;
use chm_common::FlowId;
use chm_fermat::{DecodeScratch, FermatSketch};
use chm_netsim::sim::Routable;
use chm_netsim::{QueueDepthStat, SwitchId, Topology};
use chm_obs::SpanProfiler;
use chm_tower::MracConfig;
use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};

/// Observability context threaded through the profiled analysis entry
/// points: the span tree to record into and the injected clock that
/// drives it (`&mut || 0.0` everywhere outside the bench harness).
pub type ObsCtx<'a> = (&'a mut SpanProfiler, &'a mut dyn FnMut() -> f64);

/// Load-factor targets (§4.3: reconfigure toward 70%, act below 60%).
pub const TARGET_LOAD: f64 = 0.70;
/// Low-water mark under which encoders are compressed / thresholds relaxed.
pub const LOW_LOAD: f64 = 0.60;

/// The two network states (§4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetworkState {
    /// All victim flows can be monitored with the available memory.
    Healthy,
    /// Victim flows exceed capacity: monitor HLs, sample LLs.
    Ill,
}

/// The controller's evolving decision state, exported by
/// [`Controller::snapshot`] and re-imported by [`Controller::restore`].
///
/// Holds exactly the state that is *not* derivable from the static
/// [`DataPlaneConfig`]: the deployed runtime, the healthy/ill belief, the
/// blocklist of HL sizes that failed to decode, and (when localization is
/// enabled) the localizer's EWMA tables. `failed_hl_sizes` is kept sorted
/// so two snapshots of identical controllers compare equal.
#[derive(Debug, Clone, PartialEq)]
pub struct ControllerSnapshot {
    /// Runtime configuration deployed at snapshot time.
    pub deployed: RuntimeConfig,
    /// Network-state belief (§4.3) at snapshot time.
    pub state: NetworkState,
    /// Sorted HL partition sizes that previously failed to decode.
    pub failed_hl_sizes: Vec<usize>,
    /// Localizer tables, present iff localization was enabled.
    pub localizer: Option<LocalizerSnapshot>,
}

/// The controller's decoded view of one epoch.
#[derive(Debug, Clone)]
pub struct EpochAnalysis<F> {
    /// Per-switch decoded HH flowsets (flow → packets recorded in the HH
    /// encoder, i.e. estimated size − Th).
    pub hh_flowsets: Vec<HashMap<F, i64>>,
    /// Whether **all** upstream HH encoders decoded.
    pub hh_decode_ok: bool,
    /// Decoded delta-HL flowset (victims among HH/HL candidates), `None` on
    /// decode failure.
    pub hl_flowset: Option<HashMap<F, i64>>,
    /// Decoded delta-LL flowset (sampled light losses), `None` on failure
    /// (also `None` when the LL encoders have zero memory).
    pub ll_flowset: Option<HashMap<F, i64>>,
    /// Packet loss detection output: victim flow → estimated lost packets
    /// (sum of its HL- and LL-flowset sizes, §4.2). When the delta HL
    /// encoder fails to fully decode, flows peeled before the stall are
    /// still reported if the fully-decoded upstream HH flowsets attest
    /// they exist; the residual 2-core is recovered after the controller
    /// resizes the encoder for the next epoch.
    pub loss_report: HashMap<F, u64>,
    /// Estimated number of flows per switch (linear counting on the
    /// classifier).
    pub est_flows_per_switch: Vec<f64>,
    /// Estimated flows network-wide (sum over ingress switches).
    pub est_flows: f64,
    /// Estimated number of HLs (decoded count, or linear counting on the
    /// delta HL encoder when decoding fails).
    pub est_hls: f64,
    /// Estimated number of sampled LLs (decoded or linear-counted).
    pub est_lls: f64,
    /// Estimated number of victim flows network-wide.
    pub est_victims: f64,
    /// Network-wide flow-size distribution estimate (`dist[s]` ≈ #flows of
    /// size `s`).
    pub flow_size_dist: Vec<f64>,
    /// Victim flow-size distribution (ill state; from sampled victims).
    pub victim_size_dist: Option<Vec<f64>>,
    /// Per-edge ingress port counters, in collection order. With
    /// [`edge_egress`](Self::edge_egress) this surfaces the raw per-edge
    /// asymmetry for operators and tests: on a duplication-free fabric,
    /// ingress sum − egress sum is exactly the epoch's loss; fabric
    /// duplicates traverse egress twice (as a real port counter would
    /// count them), so under duplication the egress sum can exceed the
    /// ingress sum. The localization pass itself ranks switches from the
    /// decoded flowsets.
    pub edge_ingress: Vec<u64>,
    /// Per-edge egress port counters, in collection order.
    pub edge_egress: Vec<u64>,
    /// The runtime configuration this epoch was monitored under.
    pub runtime: RuntimeConfig,
    /// The network state the controller believed during this epoch.
    pub state_during: NetworkState,
    /// How many switches' collected groups actually reached the controller
    /// this epoch. On a lossy control channel this can be fewer than the
    /// deployment's switch count — `0` means the controller flew blind and
    /// [`Controller::reconfigure`] keeps the deployed runtime unchanged.
    pub switches_reporting: usize,
}

impl<F: FlowId> EpochAnalysis<F> {
    /// Number of HH candidates decoded at switch `i` (Figure 7(b) plots
    /// switch 0).
    pub fn hh_count(&self, i: usize) -> usize {
        self.hh_flowsets.get(i).map(|m| m.len()).unwrap_or(0)
    }

    /// Decoded HLs in the network.
    pub fn hl_count(&self) -> usize {
        self.hl_flowset.as_ref().map(|m| m.len()).unwrap_or(0)
    }

    /// Decoded sampled LLs in the network.
    pub fn ll_count(&self) -> usize {
        self.ll_flowset.as_ref().map(|m| m.len()).unwrap_or(0)
    }

    /// Total decoded flows across HH (all switches) + HL + LL flowsets —
    /// the "number of decoded flows" series of Figures 7(b)/8(b).
    pub fn total_decoded(&self) -> usize {
        self.hh_flowsets.iter().map(|m| m.len()).sum::<usize>()
            + self.hl_count()
            + self.ll_count()
    }
}

/// The central controller.
#[derive(Debug, Clone)]
pub struct Controller<F: FlowId> {
    cfg: DataPlaneConfig,
    deployed: RuntimeConfig,
    state: NetworkState,
    sample_hash: PairwiseHash,
    mrac: MracConfig,
    /// HL-encoder sizes whose delta decode failed. The failure mode is a
    /// full-array hash collision, which with fixed per-salt seeds is
    /// deterministic in (bucket count, flow set) — so under stationary
    /// traffic, redeploying one of these sizes would fail identically.
    /// The resize logic steps past them.
    failed_hl_sizes: std::collections::HashSet<usize>,
    /// Reusable decode workspace: every epoch's sketch decodes run through
    /// this scratch, so the controller never clones a sketch to decode it
    /// and its peeling allocations persist across epochs.
    scratch: RefCell<DecodeScratch<F>>,
    /// Cross-epoch victim-localization state, present once
    /// [`enable_localization`](Self::enable_localization) gave the
    /// controller the fabric topology.
    localizer: Option<Localizer>,
    _f: std::marker::PhantomData<F>,
}

impl<F: FlowId> Controller<F> {
    /// Creates a controller for switches running `cfg`, starting in the
    /// healthy state with the initial runtime.
    pub fn new(cfg: DataPlaneConfig) -> Self {
        let deployed = RuntimeConfig::initial(&cfg);
        let sample_hash = PairwiseHash::from_seed(cfg.seed ^ 0x5a3b_1e00);
        Controller {
            cfg,
            deployed,
            state: NetworkState::Healthy,
            sample_hash,
            mrac: MracConfig::realtime(),
            failed_hl_sizes: std::collections::HashSet::new(),
            scratch: RefCell::new(DecodeScratch::new()),
            localizer: None,
            _f: std::marker::PhantomData,
        }
    }

    /// Gives the controller the fabric topology, enabling the per-epoch
    /// victim-localization pass ([`localize`](Self::localize)).
    pub fn enable_localization(&mut self, topology: impl Into<Topology>) {
        self.localizer = Some(Localizer::new(topology));
    }

    /// The localization pass: folds this epoch's decoded evidence — victim
    /// loss estimates (blame) and every decoded HH flow's estimated size
    /// (transit/exoneration) — into the cross-epoch tables and ranks
    /// candidate drop switches for every victim (see [`crate::localize`]).
    /// Returns `None` until
    /// [`enable_localization`](Self::enable_localization) is called.
    ///
    /// Call once per epoch, after [`analyze_epoch`](Self::analyze_epoch) —
    /// on a blind epoch (empty analysis) the tables simply decay.
    pub fn localize(&mut self, a: &EpochAnalysis<F>) -> Option<Localization<F>>
    where
        F: Routable,
    {
        self.localize_with_telemetry(a, &BTreeMap::new())
    }

    /// The localization pass with fabric queue telemetry: like
    /// [`localize`](Self::localize), but per-switch queue-depth exports
    /// (INT/queue-occupancy counters, e.g.
    /// [`EpochReport::queue_depth`](chm_netsim::sim::EpochReport)) boost
    /// the suspicion of switches that buffered heavily this epoch. Blame is
    /// additionally weighted by decode confidence: victims recovered from a
    /// *partial* delta-HL decode (the encoder stalled; the flow is only
    /// HH-attested) count at [`PARTIAL_DECODE_CONFIDENCE`] instead of 1.0,
    /// so an epoch of shaky decodes cannot swing the ranking as hard as a
    /// clean one.
    pub fn localize_with_telemetry(
        &mut self,
        a: &EpochAnalysis<F>,
        queue_depth: &BTreeMap<SwitchId, QueueDepthStat>,
    ) -> Option<Localization<F>>
    where
        F: Routable,
    {
        let localizer = self.localizer.as_mut()?;
        // The decoded HH flowsets are the controller's traffic sample: the
        // flow existed, crossed its route, and its recorded count plus Th
        // estimates its size (§4.2). Healthy ones exonerate their routes.
        let th = a.runtime.th;
        let mut traffic: HashMap<F, u64> = HashMap::new();
        for fs in &a.hh_flowsets {
            for (f, &q) in fs {
                let est = th + q.max(0) as u64;
                let e = traffic.entry(*f).or_insert(0);
                *e = (*e).max(est);
            }
        }
        // Decode confidence: when the delta-HL decode stalled, every
        // reported victim the fully-decoded LL flowset cannot vouch for
        // came from the partial peel — discount it.
        let mut confidence: HashMap<F, f64> = HashMap::new();
        if a.hl_flowset.is_none() {
            // chm-lint: allow(map-iter-order, "each key is inserted once with the same constant; the resulting map is order-independent as a value")
            for f in a.loss_report.keys() {
                let ll_attested = a
                    .ll_flowset
                    .as_ref()
                    .is_some_and(|ll| ll.contains_key(f));
                if !ll_attested {
                    confidence.insert(*f, PARTIAL_DECODE_CONFIDENCE);
                }
            }
        }
        Some(localizer.observe_evidence(EpochEvidence {
            loss_report: &a.loss_report,
            confidence: &confidence,
            traffic: &traffic,
            queue_depth,
        }))
    }

    /// [`localize_with_telemetry`](Self::localize_with_telemetry) under a
    /// `localize` span. Same injected-clock contract as
    /// [`analyze_epoch_profiled`](Self::analyze_epoch_profiled).
    pub fn localize_with_telemetry_profiled(
        &mut self,
        a: &EpochAnalysis<F>,
        queue_depth: &BTreeMap<SwitchId, QueueDepthStat>,
        spans: &mut SpanProfiler,
        clock: &mut dyn FnMut() -> f64,
    ) -> Option<Localization<F>>
    where
        F: Routable,
    {
        spans.enter("localize", clock);
        let r = self.localize_with_telemetry(a, queue_depth);
        spans.exit(clock);
        r
    }

    /// Nearest size to `m` not on the failed-size list: steps up toward
    /// `m_df` first; if the cap itself has failed, steps down toward
    /// `min_hl_buckets` instead — any change of modulus re-randomizes the
    /// bucket mapping, which is what breaks the collision.
    fn step_past_failed_hl(&self, m: usize) -> usize {
        let mut up = m;
        while self.failed_hl_sizes.contains(&up) && up < self.cfg.m_df {
            up += 1;
        }
        if !self.failed_hl_sizes.contains(&up) {
            return up;
        }
        let mut down = m;
        while self.failed_hl_sizes.contains(&down) && down > self.cfg.min_hl_buckets {
            down -= 1;
        }
        down
    }

    /// The runtime configuration currently deployed on the switches.
    pub fn deployed_runtime(&self) -> &RuntimeConfig {
        &self.deployed
    }

    /// Force-redeploys `rt` as the current runtime without consulting an
    /// analysis — the degraded-mode control a supervising runtime
    /// (`chm-serve`'s watchdog) uses to pin the last-known-good
    /// configuration while decodes are stalled. The network-state belief
    /// and the failed-size blocklist are untouched, so normal
    /// [`reconfigure`](Self::reconfigure) resumes cleanly afterwards.
    ///
    /// # Panics
    /// If `rt` is not valid under this controller's static configuration.
    pub fn hold_runtime(&mut self, rt: RuntimeConfig) {
        rt.validate(&self.cfg).expect("held runtime must be valid");
        self.deployed = rt;
    }

    /// Exports the controller's evolving decision state — everything that
    /// is not a pure function of the static [`DataPlaneConfig`] — for
    /// persistence. [`restore`](Self::restore) onto a freshly built
    /// controller (same config, localization enabled the same way)
    /// reproduces every future analysis, reconfiguration, and localization
    /// bit for bit: the decode scratch is reusable workspace, and the
    /// sample hash and MRAC settings derive from the config.
    pub fn snapshot(&self) -> ControllerSnapshot {
        let mut failed: Vec<usize> = self.failed_hl_sizes.iter().copied().collect();
        failed.sort_unstable();
        ControllerSnapshot {
            deployed: self.deployed,
            state: self.state,
            failed_hl_sizes: failed,
            localizer: self.localizer.as_ref().map(|l| l.snapshot()),
        }
    }

    /// Restores a [`snapshot`](Self::snapshot). The controller must have
    /// been built with the same static configuration; if the snapshot
    /// carries localizer tables, localization must already be enabled
    /// (the topology is not part of the snapshot).
    ///
    /// # Panics
    /// If the snapshot's runtime is invalid under this controller's static
    /// configuration, or if it carries localizer state while localization
    /// is not enabled.
    pub fn restore(&mut self, snap: &ControllerSnapshot) {
        snap.deployed
            .validate(&self.cfg)
            .expect("snapshot runtime must be valid for this config");
        self.deployed = snap.deployed;
        self.state = snap.state;
        // chm-lint: allow(map-iter-order, "iterates the snapshot's sorted Vec -- same field name as the controller's set -- and rebuilds a HashSet, whose insertion order is immaterial")
        self.failed_hl_sizes = snap.failed_hl_sizes.iter().copied().collect();
        match (&mut self.localizer, &snap.localizer) {
            (Some(l), Some(ls)) => l.restore(ls),
            (_, None) => {}
            (None, Some(_)) => {
                panic!("snapshot has localizer state but localization is not enabled")
            }
        }
    }

    /// The controller's current belief about the network state.
    pub fn state(&self) -> NetworkState {
        self.state
    }

    /// Override the MRAC effort (tests / offline analysis).
    pub fn set_mrac_config(&mut self, c: MracConfig) {
        self.mrac = c;
    }

    /// §4.2 packet loss detection + §4.3 network-state monitoring over the
    /// collected groups of the edge switches whose reports arrived.
    ///
    /// Tolerant to a lossy control channel: `collected` may hold any subset
    /// of the deployment's switches. With a partial subset the analysis
    /// proceeds on what arrived (flows egressing at a missing switch then
    /// surface as spurious victims — the honest degradation a lost report
    /// causes); with an *empty* subset the controller returns a blind
    /// analysis (`switches_reporting == 0`, nothing decoded, estimates
    /// zero) and [`reconfigure`](Self::reconfigure) leaves the deployed
    /// runtime untouched.
    pub fn analyze_epoch(&self, collected: &[CollectedGroup<F>]) -> EpochAnalysis<F> {
        self.analyze_epoch_inner(collected, &mut None)
    }

    /// [`analyze_epoch`](Self::analyze_epoch) with span profiling: the
    /// whole pass runs under an `analyze` span, and every Fermat decode
    /// records `decode/edge_{i}` (upstream HH per edge), `decode/delta_hl`,
    /// `decode/delta_ll`, plus a `decode/sparse` or `decode/loaded` span
    /// for the strategy the peel took ([`chm_fermat::DecodeStats`]).
    ///
    /// The clock is **injected** (chm_obs discipline): production callers
    /// pass `&mut || 0.0`, which keeps every duration at exactly `0.0`
    /// while span counts still accumulate deterministically. Only the
    /// bench harness passes real time.
    pub fn analyze_epoch_profiled(
        &self,
        collected: &[CollectedGroup<F>],
        spans: &mut SpanProfiler,
        clock: &mut dyn FnMut() -> f64,
    ) -> EpochAnalysis<F> {
        spans.enter("analyze", clock);
        let mut obs: Option<ObsCtx<'_>> = Some((spans, clock));
        let a = self.analyze_epoch_inner(collected, &mut obs);
        let (spans, clock) = obs.take().expect("obs context is never consumed by the analysis");
        spans.exit(clock);
        a
    }

    fn analyze_epoch_inner(
        &self,
        collected: &[CollectedGroup<F>],
        obs: &mut Option<ObsCtx<'_>>,
    ) -> EpochAnalysis<F> {
        if collected.is_empty() {
            return EpochAnalysis {
                hh_flowsets: Vec::new(),
                hh_decode_ok: false,
                hl_flowset: None,
                ll_flowset: None,
                loss_report: HashMap::new(),
                est_flows_per_switch: Vec::new(),
                est_flows: 0.0,
                est_hls: 0.0,
                est_lls: 0.0,
                est_victims: 0.0,
                flow_size_dist: Vec::new(),
                victim_size_dist: None,
                edge_ingress: Vec::new(),
                edge_egress: Vec::new(),
                runtime: self.deployed,
                state_during: self.state,
                switches_reporting: 0,
            };
        }
        let scratch = &mut *self.scratch.borrow_mut();
        let runtime = collected[0].runtime;
        let d = self.cfg.arrays as f64;

        // --- flows & flow-size distribution per switch -------------------
        let est_flows_per_switch: Vec<f64> = collected
            .iter()
            .map(|g| g.classifier.cardinality_estimate())
            .collect();
        let est_flows: f64 = est_flows_per_switch.iter().sum();

        // --- decode upstream HH encoders ---------------------------------
        let mut hh_flowsets = Vec::with_capacity(collected.len());
        let mut hh_decode_ok = true;
        for (i, g) in collected.iter().enumerate() {
            if g.runtime.partition.m_hh == 0 {
                hh_flowsets.push(HashMap::new());
                continue;
            }
            let t0 = obs.as_mut().map_or(0.0, |(_, clock)| clock());
            let r = g.up_hh.decode_with(scratch);
            if let Some((spans, clock)) = obs.as_mut() {
                let dur = clock() - t0;
                spans.record(&["decode", &format!("edge_{i}")], dur);
                let strategy = if scratch.last_stats.sparse { "sparse" } else { "loaded" };
                spans.record(&["decode", strategy], dur);
            }
            if !r.success {
                hh_decode_ok = false;
            }
            hh_flowsets.push(r.flows);
        }

        // Aggregate flow-size distribution (classifier MRAC + HH tail).
        let mut flow_size_dist: Vec<f64> = Vec::new();
        for (g, hh) in collected.iter().zip(&hh_flowsets) {
            let tail: Vec<u64> = hh
                .iter()
                .map(|(_, &q)| runtime.th + q.max(0) as u64)
                .collect();
            let dist = g.classifier.flow_size_distribution(&tail, &self.mrac);
            if dist.len() > flow_size_dist.len() {
                flow_size_dist.resize(dist.len(), 0.0);
            }
            for (s, v) in dist.iter().enumerate() {
                flow_size_dist[s] += v;
            }
        }

        // --- delta HL encoder ---------------------------------------------
        // If any HH decode failed we cannot re-insert; monitoring stops for
        // the HL path (§4.3.1), but we still estimate counts.
        let p = runtime.partition;
        let mut delta_hl: Option<FermatSketch<F>> = None;
        if p.m_hl > 0 {
            let mut cum_up = collected[0].up_hl.clone();
            if hh_decode_ok {
                for (f, c) in &hh_flowsets[0] {
                    cum_up.insert_weighted(f, *c);
                }
            }
            for (g, hh) in collected.iter().zip(&hh_flowsets).skip(1) {
                let mut up = g.up_hl.clone();
                if hh_decode_ok {
                    // chm-lint: allow(map-iter-order, "sketch insertion is commutative counter addition mod p; final sketch state is independent of insert order")
                    for (f, c) in hh {
                        up.insert_weighted(f, *c);
                    }
                }
                cum_up.add_assign_sketch(&up);
            }
            let mut cum_down = collected[0].down_hl.clone();
            for g in collected.iter().skip(1) {
                cum_down.add_assign_sketch(&g.down_hl);
            }
            cum_up.sub_assign_sketch(&cum_down);
            delta_hl = Some(cum_up);
        }
        // On a failed decode the flows peeled before the stall are still
        // verified extractions (pure-bucket test + negative-flow
        // cancellation, §A.2) — only the residual 2-core is unrecoverable.
        // Keep them for the loss report; `hl_flowset = None` still signals
        // the reconfiguration logic that the encoder needs more memory.
        let mut hl_partial: HashMap<F, i64> = HashMap::new();
        let (hl_flowset, est_hls) = match &delta_hl {
            Some(delta) if hh_decode_ok => {
                let t0 = obs.as_mut().map_or(0.0, |(_, clock)| clock());
                let r = delta.decode_with(scratch);
                if let Some((spans, clock)) = obs.as_mut() {
                    let dur = clock() - t0;
                    spans.record(&["decode", "delta_hl"], dur);
                    let strategy = if scratch.last_stats.sparse { "sparse" } else { "loaded" };
                    spans.record(&["decode", strategy], dur);
                }
                if r.success {
                    let n = r.flows.len() as f64;
                    (Some(r.flows), n)
                } else {
                    hl_partial = r.flows;
                    (None, delta.linear_count(0))
                }
            }
            Some(delta) => (None, delta.linear_count(0)),
            None => (None, 0.0),
        };

        // --- delta LL encoder ---------------------------------------------
        let mut delta_ll: Option<FermatSketch<F>> = None;
        if p.m_ll > 0 {
            let mut cum_up = collected[0].up_ll.clone();
            for g in collected.iter().skip(1) {
                cum_up.add_assign_sketch(&g.up_ll);
            }
            let mut cum_down = collected[0].down_ll.clone();
            for g in collected.iter().skip(1) {
                cum_down.add_assign_sketch(&g.down_ll);
            }
            cum_up.sub_assign_sketch(&cum_down);
            delta_ll = Some(cum_up);
        }
        let (ll_flowset, est_lls) = match &delta_ll {
            Some(delta) => {
                let t0 = obs.as_mut().map_or(0.0, |(_, clock)| clock());
                let r = delta.decode_with(scratch);
                if let Some((spans, clock)) = obs.as_mut() {
                    let dur = clock() - t0;
                    spans.record(&["decode", "delta_ll"], dur);
                    let strategy = if scratch.last_stats.sparse { "sparse" } else { "loaded" };
                    spans.record(&["decode", strategy], dur);
                }
                if r.success {
                    let n = r.flows.len() as f64;
                    (Some(r.flows), n)
                } else {
                    (None, delta.linear_count(0))
                }
            }
            None => (None, 0.0),
        };

        // --- loss report (§4.2) -------------------------------------------
        // Full decodes report as-is. A *partial* HL decode may contain a
        // false extraction whose cancelling negative twin is stuck in the
        // undecoded residue, so partial flows are reported only when the
        // fully-decoded upstream HH flowsets attest the flow exists (sound:
        // a successful FermatSketch decode is exact). Partial LL flows have
        // no such witness and are never reported.
        let mut loss_report: HashMap<F, u64> = HashMap::new();
        match &hl_flowset {
            Some(hl) => {
                for (f, c) in hl {
                    if *c > 0 {
                        *loss_report.entry(*f).or_insert(0) += *c as u64;
                    }
                }
            }
            None => {
                // chm-lint: allow(map-iter-order, "integer += accumulation into per-flow entries commutes; the loss report is order-independent as a value")
                for (f, c) in &hl_partial {
                    if *c > 0 && hh_flowsets.iter().any(|m| m.contains_key(f)) {
                        *loss_report.entry(*f).or_insert(0) += *c as u64;
                    }
                }
            }
        }
        if let Some(ll) = &ll_flowset {
            for (f, c) in ll {
                if *c > 0 {
                    *loss_report.entry(*f).or_insert(0) += *c as u64;
                }
            }
        }

        // --- victim estimates (§4.3.2 "Monitoring real-time network state")
        let rate = runtime.sample_rate();
        let (est_victims, victim_size_dist) = match self.state {
            NetworkState::Healthy => (est_hls, None),
            NetworkState::Ill => {
                match (&hl_flowset, &ll_flowset) {
                    (Some(hl), Some(ll)) => {
                        // Sample the HLs with the same method/rate as LLs,
                        // merge with sampled LLs, scale by the rate.
                        let sampled_hls: Vec<&F> = hl
                            .keys()
                            .filter(|f| {
                                (self.sample_hash.sample16(f.key64()) as u32)
                                    < runtime.sample_threshold
                            })
                            .collect();
                        let mut sampled: Vec<&F> = sampled_hls;
                        for f in ll.keys() {
                            if !hl.contains_key(f) {
                                sampled.push(f);
                            }
                        }
                        let est = if rate > 0.0 {
                            sampled.len() as f64 / rate
                        } else {
                            0.0
                        };
                        let dist = self.victim_distribution(collected, sampled.iter().copied());
                        (est, Some(dist))
                    }
                    (None, Some(ll)) => {
                        // HL decode failed: use the sampled-LL distribution.
                        let est = if rate > 0.0 {
                            est_hls + ll.len() as f64 / rate
                        } else {
                            est_hls
                        };
                        let dist = self.victim_distribution(collected, ll.keys());
                        (est, Some(dist))
                    }
                    _ => {
                        let est = if rate > 0.0 { est_hls + est_lls / rate } else { est_hls };
                        (est, None)
                    }
                }
            }
        };

        let _ = d;
        EpochAnalysis {
            hh_flowsets,
            hh_decode_ok,
            hl_flowset,
            ll_flowset,
            loss_report,
            est_flows_per_switch,
            est_flows,
            est_hls,
            est_lls,
            est_victims,
            flow_size_dist,
            victim_size_dist,
            edge_ingress: collected.iter().map(|g| g.ingress_pkts).collect(),
            edge_egress: collected.iter().map(|g| g.egress_pkts).collect(),
            runtime,
            state_during: self.state,
            switches_reporting: collected.len(),
        }
    }

    /// Flow-size distribution of a set of (victim) flows, via classifier
    /// queries (§4.3.2). A flow is only inserted at its ingress switch, so
    /// we take the max over switches of the (min-)query.
    fn victim_distribution<'a>(
        &self,
        collected: &[CollectedGroup<F>],
        flows: impl Iterator<Item = &'a F>,
    ) -> Vec<f64>
    where
        F: 'a,
    {
        let mut dist = vec![0.0; 16];
        for f in flows {
            let size = collected
                .iter()
                .map(|g| g.classifier.query_clamped(f.key64()))
                .max()
                .unwrap_or(0) as usize;
            if size >= dist.len() {
                dist.resize(size + 1, 0.0);
            }
            dist[size] += 1.0;
        }
        dist
    }

    /// §4.3 "Reconfiguring ChameleMon data plane". Consumes the analysis and
    /// returns the runtime configuration for the next epoch, updating the
    /// controller's network-state belief.
    pub fn reconfigure(&mut self, a: &EpochAnalysis<F>) -> RuntimeConfig {
        if a.switches_reporting == 0 {
            // Every report was lost this epoch: no evidence to act on.
            // Redeploy the current runtime unchanged rather than reacting
            // to the blind analysis's zeroed estimates.
            return self.deployed;
        }
        let rt = match self.state {
            NetworkState::Healthy => self.reconfigure_healthy(a),
            NetworkState::Ill => self.reconfigure_ill(a),
        };
        rt.validate(&self.cfg).expect("controller produced invalid runtime");
        self.deployed = rt;
        rt
    }

    // ------------------------------------------------------------------
    // Healthy network state (§4.3.1)
    // ------------------------------------------------------------------
    fn reconfigure_healthy(&mut self, a: &EpochAnalysis<F>) -> RuntimeConfig {
        let mut rt = self.deployed;
        let d = self.cfg.arrays as f64;
        let flows_sw = max_or_zero(&a.est_flows_per_switch);

        // Step 1: ensure the upstream HH encoders decode.
        if !a.hh_decode_ok {
            let cap = TARGET_LOAD * rt.partition.m_hh as f64 * d;
            let new_th = threshold_for_target(&a.flow_size_dist, flows_sw, cap);
            rt.th = new_th.max(rt.th + 1); // "turns up Th"
            rt.tl = rt.tl.min(rt.th);
            // Decoding of the delta HL encoder could not proceed: stop.
            return rt;
        }

        // Step 2: delta HL decoding / memory utilization.
        match &a.hl_flowset {
            None => {
                // This size just failed to decode under live traffic;
                // remember it so resizing never lands on it again.
                self.failed_hl_sizes.insert(a.runtime.partition.m_hl);
                let required_total = a.est_hls / TARGET_LOAD; // buckets (m·d)
                let max_total = self.cfg.m_df as f64 * d;
                if required_total > max_total {
                    // Healthy → Ill transition.
                    self.state = NetworkState::Ill;
                    rt.partition = self.cfg.ill_partition;
                    rt.tl = rt.th.max(2); // Tl = Th (must exceed 1 in ill state)
                    rt.th = rt.th.max(rt.tl);
                    let ll_cap = TARGET_LOAD * self.cfg.ill_partition.m_ll as f64 * d;
                    // Assume each HL will be a LL (§4.3.1 step 2).
                    rt.set_sample_rate(ll_cap / a.est_hls.max(1.0));
                    return self.finish_with_th(rt, a);
                }
                // Expand the HL encoders to the required memory — and
                // always *strictly* grow: the estimate can claim the
                // current size suffices when the failure was a rare
                // all-arrays collision (the (1/m)^{d-1} 2-core), and
                // redeploying the same `m` would retry the identical
                // mapping every epoch. Growing changes the modulus, which
                // re-randomizes the mapping and breaks the collision.
                let grown = rt.partition.m_hl + (rt.partition.m_hl / 2).max(1);
                let new_m_hl = self.step_past_failed_hl(
                    ((required_total / d).ceil() as usize)
                        .max(grown)
                        .clamp(self.cfg.min_hl_buckets, self.cfg.m_df),
                );
                rt.partition = Partition {
                    m_hh: self.cfg.m_uf - new_m_hl,
                    m_hl: new_m_hl,
                    m_ll: 0,
                };
            }
            Some(hl) => {
                let load = hl.len() as f64 / (rt.partition.m_hl as f64 * d);
                if load < LOW_LOAD {
                    // Compress toward 70%, but keep the reserved minimum —
                    // and never compress onto a size that failed to decode.
                    let new_m_hl = self.step_past_failed_hl(
                        ((hl.len() as f64 / TARGET_LOAD / d).ceil() as usize)
                            .clamp(self.cfg.min_hl_buckets, self.cfg.m_df),
                    );
                    rt.partition = Partition {
                        m_hh: self.cfg.m_uf - new_m_hl,
                        m_hl: new_m_hl,
                        m_ll: 0,
                    };
                }
            }
        }

        self.finish_with_th(rt, a)
    }

    // ------------------------------------------------------------------
    // Ill network state (§4.3.2)
    // ------------------------------------------------------------------
    fn reconfigure_ill(&mut self, a: &EpochAnalysis<F>) -> RuntimeConfig {
        let mut rt = self.deployed;
        let d = self.cfg.arrays as f64;
        let flows_sw = max_or_zero(&a.est_flows_per_switch);

        // Step 1a: HH encoders must decode.
        if !a.hh_decode_ok {
            let cap = TARGET_LOAD * rt.partition.m_hh as f64 * d;
            let new_th = threshold_for_target(&a.flow_size_dist, flows_sw, cap);
            rt.th = new_th.max(rt.th + 1);
            rt.tl = rt.tl.min(rt.th);
            return rt;
        }
        // Step 1b: delta LL encoder must decode.
        if a.ll_flowset.is_none() && rt.partition.m_ll > 0 {
            let cap = TARGET_LOAD * rt.partition.m_ll as f64 * d;
            // est_lls is the linear-counting estimate of *sampled* LLs under
            // the current rate; rescale the rate toward the capacity.
            if a.est_lls > 0.0 {
                let new_rate = rt.sample_rate() * cap / a.est_lls;
                rt.set_sample_rate(new_rate.min(1.0));
            }
            return rt;
        }

        // Step 2: delta HL encoder must decode — turn up Tl.
        if a.hl_flowset.is_none() {
            let cap = TARGET_LOAD * rt.partition.m_hl as f64 * d;
            let dist = a
                .victim_size_dist
                .as_deref()
                .unwrap_or(&a.flow_size_dist);
            let new_tl = threshold_for_target(dist, a.est_victims, cap);
            rt.tl = new_tl.max(rt.tl + 1).min(rt.th);
            return self.finish_with_th(rt, a);
        }

        // Step 3: both delta encoders decoded.
        let hl_load = a.hl_count() as f64 / (rt.partition.m_hl as f64 * d);
        let ll_load = if rt.partition.m_ll > 0 {
            a.ll_count() as f64 / (rt.partition.m_ll as f64 * d)
        } else {
            TARGET_LOAD
        };
        let required_total = a.est_victims / TARGET_LOAD;
        let max_total = self.cfg.m_df as f64 * d;
        if required_total <= max_total {
            // Ill → Healthy transition: eliminate LL encoders, give the
            // required memory (≥ reserved minimum) to the HL encoders.
            self.state = NetworkState::Healthy;
            let new_m_hl = self.step_past_failed_hl(
                ((required_total / d).ceil() as usize)
                    .clamp(self.cfg.min_hl_buckets, self.cfg.m_df),
            );
            rt.partition = Partition {
                m_hh: self.cfg.m_uf - new_m_hl,
                m_hl: new_m_hl,
                m_ll: 0,
            };
            rt.tl = 1;
            rt.sample_threshold = 65_536;
            return self.finish_with_th(rt, a);
        }
        // Still ill: keep utilization high.
        if hl_load < LOW_LOAD {
            // Admit more HLs: tune Tl toward 70% HL load using the victim
            // size distribution. Damped — Tl at most halves per epoch — so
            // estimation noise in the sampled victim distribution cannot
            // make Tl overshoot down, overload the HL encoder, and
            // oscillate.
            let cap = TARGET_LOAD * rt.partition.m_hl as f64 * d;
            let dist = a
                .victim_size_dist
                .as_deref()
                .unwrap_or(&a.flow_size_dist);
            let new_tl = threshold_for_target(dist, a.est_victims, cap);
            rt.tl = new_tl.max(rt.tl / 2).clamp(2, rt.th);
        }
        if ll_load < LOW_LOAD && rt.partition.m_ll > 0 {
            let cap = TARGET_LOAD * rt.partition.m_ll as f64 * d;
            // Unsampled LLs ≈ sampled/rate; pick the rate that fills the cap.
            let rate = rt.sample_rate();
            if rate > 0.0 && a.est_lls > 0.0 {
                let unsampled = a.est_lls / rate;
                rt.set_sample_rate((cap / unsampled).min(1.0));
            }
        }

        self.finish_with_th(rt, a)
    }

    /// Final step of both states: keep the upstream HH encoders' expected
    /// load in [60%, 70%] by tuning `Th` (§4.3.1 step 3 / §4.3.2 step 4).
    fn finish_with_th(&self, mut rt: RuntimeConfig, a: &EpochAnalysis<F>) -> RuntimeConfig {
        let d = self.cfg.arrays as f64;
        if rt.partition.m_hh == 0 {
            return rt;
        }
        let cap = rt.partition.m_hh as f64 * d;
        let hh_sw = a
            .hh_flowsets
            .iter()
            .map(|m| m.len())
            .max()
            .unwrap_or(0) as f64;
        let expected_load = hh_sw / cap;
        if !(LOW_LOAD..=TARGET_LOAD).contains(&expected_load) {
            let flows_sw = max_or_zero(&a.est_flows_per_switch);
            let new_th =
                threshold_for_target(&a.flow_size_dist, flows_sw, TARGET_LOAD * cap);
            rt.th = new_th.max(rt.tl).max(1);
        }
        rt
    }
}

/// Largest element or 0 for empty slices.
fn max_or_zero(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(0.0, f64::max)
}

/// The smallest threshold `t ≥ 1` such that the expected number of flows of
/// size ≥ `t` — `n_flows · P(size ≥ t)` under `dist` — is at most
/// `target_count`. `dist` is an absolute histogram; it is normalized
/// internally.
pub fn threshold_for_target(dist: &[f64], n_flows: f64, target_count: f64) -> u64 {
    let total: f64 = dist.iter().sum();
    if total <= 0.0 || n_flows <= 0.0 {
        return 1;
    }
    // Survival function from the top.
    let mut surv = 0.0;
    let mut best = dist.len() as u64; // worst case: above the whole histogram
    for t in (1..dist.len()).rev() {
        surv += dist[t];
        let expected = n_flows * surv / total;
        if expected <= target_count {
            best = t as u64;
        } else {
            break;
        }
    }
    best.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use chm_netsim::FatTree;

    #[test]
    fn threshold_for_target_basics() {
        // 100 flows: 90 of size 1, 9 of size 10, 1 of size 100.
        let mut dist = vec![0.0; 101];
        dist[1] = 90.0;
        dist[10] = 9.0;
        dist[100] = 1.0;
        // Want at most 10 candidates => threshold 2 (sizes >= 2: 10 flows).
        assert_eq!(threshold_for_target(&dist, 100.0, 10.0), 2);
        // Want at most 1 candidate => threshold 11.
        assert_eq!(threshold_for_target(&dist, 100.0, 1.0), 11);
        // Want everything => threshold 1.
        assert_eq!(threshold_for_target(&dist, 100.0, 1000.0), 1);
        // Impossible target => beyond the histogram.
        assert_eq!(threshold_for_target(&dist, 100.0, 0.5), 101);
    }

    #[test]
    fn threshold_for_target_degenerate() {
        assert_eq!(threshold_for_target(&[], 100.0, 10.0), 1);
        assert_eq!(threshold_for_target(&[0.0, 5.0], 0.0, 10.0), 1);
    }

    #[test]
    fn max_or_zero_works() {
        assert_eq!(max_or_zero(&[]), 0.0);
        assert_eq!(max_or_zero(&[1.0, 3.0, 2.0]), 3.0);
    }

    #[test]
    fn snapshot_restore_round_trips_decision_state() {
        let cfg = DataPlaneConfig::small(7);
        let mut c: Controller<u64> = Controller::new(cfg.clone());
        // Mutate every snapshotted field away from its initial value.
        let mut rt = *c.deployed_runtime();
        rt.partition = Partition {
            m_hl: rt.partition.m_hl + 16,
            m_hh: rt.partition.m_hh - 16,
            ..rt.partition
        };
        c.hold_runtime(rt);
        c.state = NetworkState::Ill;
        c.failed_hl_sizes.insert(320);
        c.failed_hl_sizes.insert(480);

        let snap = c.snapshot();
        assert_eq!(snap.failed_hl_sizes, vec![320, 480]);
        assert!(snap.localizer.is_none());

        let mut fresh: Controller<u64> = Controller::new(cfg);
        fresh.restore(&snap);
        assert_eq!(fresh.deployed_runtime(), c.deployed_runtime());
        assert_eq!(fresh.state(), c.state());
        assert_eq!(fresh.snapshot(), snap);
    }

    #[test]
    fn snapshot_carries_localizer_tables() {
        let topo = FatTree::new(2, 2);
        let cfg = DataPlaneConfig::small(7);
        let mut c: Controller<u64> = Controller::new(cfg.clone());
        c.enable_localization(topo.clone());
        let snap = c.snapshot();
        assert!(snap.localizer.is_some());

        let mut fresh: Controller<u64> = Controller::new(cfg);
        fresh.enable_localization(topo);
        fresh.restore(&snap);
        assert_eq!(fresh.snapshot(), snap);
    }

    #[test]
    #[should_panic(expected = "held runtime must be valid")]
    fn hold_runtime_rejects_invalid_config() {
        let cfg = DataPlaneConfig::small(7);
        let mut c: Controller<u64> = Controller::new(cfg);
        let mut rt = *c.deployed_runtime();
        rt.partition.m_hh += 1; // breaks m_hh + m_hl + m_ll == m_uf
        c.hold_runtime(rt);
    }
}
