//! Victim localization: *where* did the fabric hurt this flow?
//!
//! ChameleMon's edge deployment sees a victim flow's loss as an
//! ingress/egress asymmetry — the upstream encoders at its ingress ToR
//! counted more packets than the downstream encoders at its egress ToR —
//! which brackets the drop somewhere on the flow's ECMP route between the
//! two edges. One victim cannot be localized further than its route, but
//! victims *in aggregate* can: routes that share the culprit switch all
//! bleed, routes that avoid it stay clean, so spreading every victim's
//! estimated loss over its route and accumulating across epochs
//! concentrates blame on the switches that actually drop (the classic
//! loss-tomography argument; per-link deployments like LossRadar get this
//! attribution for free, an edge deployment must infer it).
//!
//! Blame alone is not enough on a fat-tree: ECMP parity pins each core to
//! specific aggregation switches, so every victim route through a
//! browned-out core *also* contains one of two aggs — their blame ties the
//! core's exactly. The discriminator is **exoneration**: flows the
//! controller decoded that did *not* lose packets (the HH flowsets) still
//! name the switches they crossed, and same-pod healthy traffic transits
//! aggs but never cores. The localizer therefore keeps two
//! exponentially-decayed tables — per-switch *blame* (victims' estimated
//! loss, spread over their routes) and per-switch *transit* (known
//! traffic, victims and healthy alike, spread the same way) — and scores
//! each switch by `blame / (1 + transit)`, an estimated per-switch loss
//! intensity. The decay lets the picture track moving hot spots — a
//! rolling ToR degradation shifts the ranking within an epoch or two.
//!
//! Accuracy is scored as **top-k hit rate**: the fraction of ground-truth
//! victims whose true dominant drop switch appears among the first `k`
//! ranked candidates (`chm_scenarios::runner` scores k = 1 and 3 against
//! [`EpochReport::lost_at`](chm_netsim::sim::EpochReport)).
//!
//! Everything here is deterministic: victims and healthy flows are folded
//! in sorted key order, so the floating-point tables — and therefore every
//! ranking — are a pure function of the epoch sequence.

use chm_netsim::sim::Routable;
use chm_netsim::{QueueDepthStat, SwitchId, Topology};
use std::collections::{BTreeMap, HashMap};

/// Default per-epoch decay of accumulated blame.
pub const BLAME_DECAY: f64 = 0.5;

/// Blame weight of a victim recovered from a *partial* delta-HL decode.
/// A full FermatSketch decode is exact, so its victims carry weight 1.0; a
/// flow peeled before a decode stall is only HH-attested — real, but its
/// loss estimate may be off (its cancelling negative twin can be stuck in
/// the residue), so its blame is discounted rather than trusted outright.
pub const PARTIAL_DECODE_CONFIDENCE: f64 = 0.5;

/// One epoch's localization inputs: what the controller decoded, how much
/// it trusts each victim's estimate, and what the switches told it about
/// their queues.
pub struct EpochEvidence<'a, F> {
    /// Decoded victim flow → estimated lost packets (blame mass).
    pub loss_report: &'a HashMap<F, u64>,
    /// Per-victim decode confidence in `[0, 1]`; victims absent from the
    /// map count as fully trusted (1.0). Blame is scaled by it, transit is
    /// not — an uncertain victim still certainly *crossed* its route.
    pub confidence: &'a HashMap<F, f64>,
    /// Every flow the controller decoded this epoch (victim or healthy)
    /// with its estimated packet count — healthy flows exonerate the
    /// switches they crossed.
    pub traffic: &'a HashMap<F, u64>,
    /// Per-switch queue-depth telemetry (INT/queue-occupancy export from
    /// the fabric). A deep queue corroborates blame: the scores of switches
    /// that buffered heavily are boosted relative to those that stayed
    /// shallow. Empty = no telemetry, scoring unchanged.
    pub queue_depth: &'a BTreeMap<SwitchId, QueueDepthStat>,
}

/// One epoch's localization output.
#[derive(Debug, Clone)]
pub struct Localization<F> {
    /// Per-victim candidate switches, most suspect first (the victim's
    /// route ordered by the network-wide suspicion score, ties toward the
    /// smaller [`SwitchId`]).
    pub per_victim: HashMap<F, Vec<SwitchId>>,
    /// Network-wide suspect ranking: every blamed switch with its
    /// suspicion score ([`Localizer::score`] — blame normalized by known
    /// transit, *not* the raw blame), highest first.
    pub ranking: Vec<(SwitchId, f64)>,
}

impl<F: Eq + std::hash::Hash> PartialEq for Localization<F> {
    fn eq(&self, other: &Self) -> bool {
        self.per_victim == other.per_victim && self.ranking == other.ranking
    }
}

impl<F: Routable> Localization<F> {
    /// The `k` most suspect switches network-wide.
    pub fn top(&self, k: usize) -> Vec<SwitchId> {
        self.ranking.iter().take(k).map(|&(s, _)| s).collect()
    }
}

/// Cross-epoch per-switch blame/transit accumulator (see module docs).
#[derive(Debug, Clone)]
pub struct Localizer {
    topology: Topology,
    blame: BTreeMap<SwitchId, f64>,
    transit: BTreeMap<SwitchId, f64>,
    /// Current-epoch telemetry boost per switch (normalized mean queue
    /// depth in `[0, 1]`); replaced wholesale each observation, empty when
    /// no telemetry arrived.
    telemetry: BTreeMap<SwitchId, f64>,
    decay: f64,
}

impl Localizer {
    /// A localizer over `topology` with the default [`BLAME_DECAY`].
    pub fn new(topology: impl Into<Topology>) -> Self {
        Localizer {
            topology: topology.into(),
            blame: BTreeMap::new(),
            transit: BTreeMap::new(),
            telemetry: BTreeMap::new(),
            decay: BLAME_DECAY,
        }
    }

    /// Overrides the per-epoch blame decay (0 = memoryless, 1 = never
    /// forget).
    pub fn with_decay(mut self, decay: f64) -> Self {
        assert!((0.0..=1.0).contains(&decay), "decay out of range");
        self.decay = decay;
        self
    }

    /// The current blame of `switch` (victims' loss mass routed through
    /// it).
    pub fn blame(&self, switch: SwitchId) -> f64 {
        self.blame.get(&switch).copied().unwrap_or(0.0)
    }

    /// The switch's suspicion score: accumulated blame normalized by the
    /// known traffic transiting it — an estimated per-switch loss
    /// intensity, so a switch is only suspect when its loss is large
    /// *relative to what it carries* — boosted by up to 2× when this
    /// epoch's queue telemetry shows the switch buffering heavily (no
    /// telemetry = no boost, scores bit-identical to the telemetry-free
    /// localizer).
    pub fn score(&self, switch: SwitchId) -> f64 {
        let b = self.blame(switch);
        if b <= 0.0 {
            return 0.0;
        }
        let base = b / (1.0 + self.transit.get(&switch).copied().unwrap_or(0.0));
        match self.telemetry.get(&switch) {
            Some(&t) => base * (1.0 + t),
            None => base,
        }
    }

    /// Folds one epoch's evidence into the tables and returns the epoch's
    /// localization. `loss_report` is the controller's decoded victim →
    /// estimated-lost-packets map; `traffic` is every flow the controller
    /// decoded this epoch (victim or healthy) with its estimated packet
    /// count — healthy flows exonerate the switches they crossed. A victim
    /// missing from `traffic` contributes its loss estimate as a (lower
    /// bound) transit weight. Victims are fully trusted and no queue
    /// telemetry is consulted — the plain form of
    /// [`observe_evidence`](Self::observe_evidence).
    pub fn observe_epoch<F: Routable>(
        &mut self,
        loss_report: &HashMap<F, u64>,
        traffic: &HashMap<F, u64>,
    ) -> Localization<F> {
        self.observe_evidence(EpochEvidence {
            loss_report,
            confidence: &HashMap::new(),
            traffic,
            queue_depth: &BTreeMap::new(),
        })
    }

    /// Folds one epoch's full evidence — blame weighted by decode
    /// confidence, transit exoneration, and queue-depth telemetry — into
    /// the tables and returns the epoch's localization. With an empty
    /// confidence map and empty telemetry this is bit-identical to
    /// [`observe_epoch`](Self::observe_epoch).
    pub fn observe_evidence<F: Routable>(&mut self, ev: EpochEvidence<'_, F>) -> Localization<F> {
        for b in self.blame.values_mut() {
            *b *= self.decay;
        }
        for t in self.transit.values_mut() {
            *t *= self.decay;
        }
        // Telemetry is a per-epoch snapshot, not an accumulator: replace it
        // wholesale, normalized by the epoch's deepest/heaviest switch so
        // the boost is scale-free in `[0, 1]`. When the exporter provides
        // slot-resolved drop series, half the boost comes from drop *mass
        // and timing* — a switch that sheds its packets in a concentrated
        // burst is a stronger culprit signal than one whose queue merely
        // sat deep — and the depth share carries the other half. Exports
        // with per-epoch aggregates only (no slot series anywhere) keep the
        // pure depth normalization, bit-identical to the pre-slot-timing
        // localizer.
        self.telemetry.clear();
        let deepest = ev
            .queue_depth
            .values()
            .map(|d| d.mean_depth)
            .fold(0.0f64, f64::max);
        let heaviest = ev
            .queue_depth
            .values()
            .map(|d| d.drop_mass())
            .fold(0.0f64, f64::max);
        if deepest > 0.0 || heaviest > 0.0 {
            for (&s, d) in ev.queue_depth {
                let depth_part =
                    if deepest > 0.0 { d.mean_depth / deepest } else { 0.0 };
                let boost = if heaviest > 0.0 {
                    0.5 * depth_part
                        + 0.5 * (d.drop_mass() / heaviest) * d.drop_concentration()
                } else {
                    depth_part
                };
                self.telemetry.insert(s, boost);
            }
        }
        // Deterministic fold order: the tables are floating point, so
        // accumulation must not depend on HashMap iteration order.
        let mut victims: Vec<(&F, u64)> =
            ev.loss_report.iter().map(|(f, &l)| (f, l)).collect();
        victims.sort_by_key(|(f, _)| f.key64());
        let mut routes: Vec<(&F, Vec<SwitchId>)> = Vec::with_capacity(victims.len());
        for (f, loss) in victims {
            let route = self.topology.route(f.src_host(), f.dst_host(), f.key64());
            let conf = ev.confidence.get(f).copied().unwrap_or(1.0);
            let share = conf * loss as f64 / route.len() as f64;
            let weight =
                ev.traffic.get(f).copied().unwrap_or(loss) as f64 / route.len() as f64;
            for &s in &route {
                *self.blame.entry(s).or_insert(0.0) += share;
                *self.transit.entry(s).or_insert(0.0) += weight;
            }
            routes.push((f, route));
        }
        let loss_report = ev.loss_report;
        let traffic = ev.traffic;
        let mut healthy: Vec<(&F, u64)> = traffic
            .iter()
            .filter(|(f, _)| !loss_report.contains_key(f))
            .map(|(f, &w)| (f, w))
            .collect();
        healthy.sort_by_key(|(f, _)| f.key64());
        for (f, w) in healthy {
            let route = self.topology.route(f.src_host(), f.dst_host(), f.key64());
            let share = w as f64 / route.len() as f64;
            for &s in &route {
                *self.transit.entry(s).or_insert(0.0) += share;
            }
        }
        let per_victim = routes
            .into_iter()
            .map(|(f, mut route)| {
                self.rank_route(&mut route);
                (*f, route)
            })
            .collect();
        let mut ranking: Vec<(SwitchId, f64)> = self
            .blame
            .iter()
            .filter(|&(_, &b)| b > 0.0)
            .map(|(&s, _)| (s, self.score(s)))
            .collect();
        ranking.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        Localization { per_victim, ranking }
    }

    /// Orders `route` most-suspect-first by current score (ties toward the
    /// smaller switch id).
    fn rank_route(&self, route: &mut [SwitchId]) {
        route.sort_by(|a, b| {
            self.score(*b)
                .total_cmp(&self.score(*a))
                .then(a.cmp(b))
        });
    }

    /// Exports the cross-epoch tables for persistence. Together with the
    /// topology (which the host reconstructs) this is the localizer's
    /// entire state: [`restore`](Self::restore) onto a fresh localizer over
    /// the same topology reproduces every future ranking bit for bit.
    pub fn snapshot(&self) -> LocalizerSnapshot {
        LocalizerSnapshot {
            blame: self.blame.iter().map(|(&s, &v)| (s, v)).collect(),
            transit: self.transit.iter().map(|(&s, &v)| (s, v)).collect(),
            telemetry: self.telemetry.iter().map(|(&s, &v)| (s, v)).collect(),
            decay: self.decay,
        }
    }

    /// Replaces the cross-epoch tables with a previously exported
    /// [`snapshot`](Self::snapshot) (the inverse operation; the topology is
    /// not part of the snapshot and stays as constructed).
    pub fn restore(&mut self, snap: &LocalizerSnapshot) {
        self.blame = snap.blame.iter().copied().collect();
        self.transit = snap.transit.iter().copied().collect();
        self.telemetry = snap.telemetry.iter().copied().collect();
        self.decay = snap.decay;
    }
}

/// A [`Localizer`]'s persistable state: the decayed blame/transit tables
/// and the current-epoch telemetry boost, in sorted switch order (the
/// tables are `BTreeMap`s, so the vectors round-trip exactly).
#[derive(Debug, Clone, PartialEq)]
pub struct LocalizerSnapshot {
    /// Per-switch accumulated blame.
    pub blame: Vec<(SwitchId, f64)>,
    /// Per-switch accumulated transit (exoneration mass).
    pub transit: Vec<(SwitchId, f64)>,
    /// Per-switch telemetry boost of the last observed epoch.
    pub telemetry: Vec<(SwitchId, f64)>,
    /// The per-epoch decay factor in effect.
    pub decay: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use chm_common::FiveTuple;
    use chm_netsim::{FatTree, SwitchRole};
    use chm_workloads::trace::host_ip;

    fn flow(src: u32, dst: u32, port: u16) -> FiveTuple {
        FiveTuple {
            src_ip: host_ip(src),
            dst_ip: host_ip(dst),
            src_port: port,
            dst_port: 80,
            proto: 17,
        }
    }

    #[test]
    fn shared_egress_tor_dominates_the_ranking() {
        // Victims from many sources all egress at ToR 3 (hosts 6/7): its
        // blame accumulates from every victim, transit switches split.
        let mut loc = Localizer::new(FatTree::testbed());
        let mut report = HashMap::new();
        for (i, src) in [0u32, 1, 2, 3, 4, 5].iter().enumerate() {
            report.insert(flow(*src, 6 + (i as u32 % 2), 1000 + i as u16), 30u64);
        }
        let l = loc.observe_epoch(&report, &HashMap::new());
        assert_eq!(
            l.top(1),
            vec![SwitchId { role: SwitchRole::Edge, index: 3 }],
            "ranking: {:?}",
            l.ranking
        );
        // Every victim's candidate list starts with the shared ToR.
        for (f, cands) in &l.per_victim {
            assert_eq!(
                cands[0],
                SwitchId { role: SwitchRole::Edge, index: 3 },
                "victim {f:?} candidates {cands:?}"
            );
        }
    }

    #[test]
    fn decay_lets_blame_track_a_moving_culprit() {
        let mut loc = Localizer::new(FatTree::testbed());
        // Epochs 0-2: victims egress at ToR 0; epochs 3-5: at ToR 2. Source
        // and port diversity spreads the transit (agg/core) blame across
        // the ECMP fan-out, so the shared egress ToR dominates.
        let mut early = HashMap::new();
        let mut late = HashMap::new();
        for i in 0..24u32 {
            early.insert(flow(2 + (i % 6), i % 2, 2000 + i as u16), 40u64);
            late.insert(flow(i % 4, 4 + (i % 2), 3000 + 7 * i as u16), 40u64);
        }
        for _ in 0..3 {
            loc.observe_epoch(&early, &HashMap::new());
        }
        let mut last = loc.observe_epoch(&late, &HashMap::new());
        for _ in 0..2 {
            last = loc.observe_epoch(&late, &HashMap::new());
        }
        assert_eq!(
            last.top(1),
            vec![SwitchId { role: SwitchRole::Edge, index: 2 }],
            "ranking must have moved on: {:?}",
            last.ranking
        );
    }

    #[test]
    fn healthy_traffic_exonerates_the_parity_pinned_aggs() {
        // Every victim crosses core 0 (and, by ECMP parity, one of aggs
        // 0/2) — blame alone ties the three. Healthy same-pod flows transit
        // the aggs but never the core: exoneration must break the tie in
        // the core's favor.
        let mut loc = Localizer::new(FatTree::testbed());
        let mut victims = HashMap::new();
        let mut traffic = HashMap::new();
        let topo = FatTree::testbed();
        let mut port = 5000u16;
        // Collect cross-pod victims actually routed via core 0.
        'outer: for src in 0..4u32 {
            for dst in 4..8u32 {
                loop {
                    port += 1;
                    let f = flow(src, dst, port);
                    use chm_common::FlowId as _;
                    let r = topo.route(src as usize, dst as usize, f.key64());
                    if r.iter().any(|s| {
                        *s == SwitchId { role: SwitchRole::Core, index: 0 }
                    }) {
                        victims.insert(f, 25u64);
                        traffic.insert(f, 400u64);
                        break;
                    }
                    if port > 6000 {
                        break 'outer;
                    }
                }
            }
        }
        assert!(victims.len() >= 12);
        // Healthy same-pod traffic exercising the aggs.
        for i in 0..40u32 {
            let (src, dst) = if i % 2 == 0 { (i % 2, 2 + (i % 2)) } else { (4, 6) };
            traffic.insert(flow(src, dst + i % 2, 7000 + i as u16), 500u64);
        }
        let mut l = loc.observe_epoch(&victims, &traffic);
        for _ in 0..2 {
            l = loc.observe_epoch(&victims, &traffic);
        }
        assert_eq!(
            l.top(1),
            vec![SwitchId { role: SwitchRole::Core, index: 0 }],
            "exoneration must single out the core: {:?}",
            l.ranking
        );
        for (f, cands) in &l.per_victim {
            assert_eq!(
                cands[0],
                SwitchId { role: SwitchRole::Core, index: 0 },
                "victim {f:?} candidates {cands:?}"
            );
        }
    }

    #[test]
    fn observation_is_deterministic() {
        let mut report = HashMap::new();
        for i in 0..20u32 {
            report.insert(flow(i % 8, (i + 3) % 8, 4000 + i as u16), 5 + i as u64);
        }
        let mut a = Localizer::new(FatTree::testbed());
        let mut b = Localizer::new(FatTree::testbed());
        for _ in 0..4 {
            let la = a.observe_epoch(&report, &HashMap::new());
            let lb = b.observe_epoch(&report, &HashMap::new());
            assert_eq!(la, lb);
        }
    }

    #[test]
    fn empty_evidence_extras_are_bit_identical_to_observe_epoch() {
        let mut report = HashMap::new();
        let mut traffic = HashMap::new();
        for i in 0..30u32 {
            report.insert(flow(i % 8, (i + 5) % 8, 4100 + i as u16), 7 + i as u64);
            traffic.insert(flow((i + 1) % 8, (i + 4) % 8, 8100 + i as u16), 200u64);
        }
        let mut plain = Localizer::new(FatTree::testbed());
        let mut evidenced = Localizer::new(FatTree::testbed());
        for _ in 0..4 {
            let a = plain.observe_epoch(&report, &traffic);
            let b = evidenced.observe_evidence(EpochEvidence {
                loss_report: &report,
                confidence: &HashMap::new(),
                traffic: &traffic,
                queue_depth: &BTreeMap::new(),
            });
            assert_eq!(a, b, "no confidence + no telemetry must change nothing");
        }
    }

    #[test]
    fn low_confidence_victims_swing_the_ranking_less() {
        // Full-confidence victims at ToR 1 vs discounted victims at ToR 3,
        // equal loss mass, pods kept separate so neither group's ingress
        // ToR pollutes the other's egress blame: the trusted side must
        // outrank the shaky side.
        let mut report = HashMap::new();
        let mut confidence = HashMap::new();
        for i in 0..12u32 {
            let trusted = flow(i % 2, 2 + (i % 2), 5000 + i as u16);
            let shaky = flow(4 + (i % 2), 6 + (i % 2), 5100 + i as u16);
            report.insert(trusted, 40u64);
            report.insert(shaky, 40u64);
            confidence.insert(shaky, PARTIAL_DECODE_CONFIDENCE);
        }
        let mut loc = Localizer::new(FatTree::testbed());
        let mut l = loc.observe_evidence(EpochEvidence {
            loss_report: &report,
            confidence: &confidence,
            traffic: &HashMap::new(),
            queue_depth: &BTreeMap::new(),
        });
        for _ in 0..2 {
            l = loc.observe_evidence(EpochEvidence {
                loss_report: &report,
                confidence: &confidence,
                traffic: &HashMap::new(),
                queue_depth: &BTreeMap::new(),
            });
        }
        let tor1 = SwitchId { role: SwitchRole::Edge, index: 1 };
        let tor3 = SwitchId { role: SwitchRole::Edge, index: 3 };
        let rank = |s: SwitchId| l.ranking.iter().position(|&(r, _)| r == s).unwrap();
        assert!(
            rank(tor1) < rank(tor3),
            "discounted blame must rank below trusted blame: {:?}",
            l.ranking
        );
        assert!(loc.blame(tor1) > loc.blame(tor3) * 1.5);
    }

    #[test]
    fn queue_telemetry_breaks_a_blame_tie() {
        // Two victim groups with symmetric blame (ToR 0 and ToR 2 egress);
        // telemetry showing only ToR 2 buffering must promote it.
        let mut report = HashMap::new();
        for i in 0..8u32 {
            report.insert(flow(4 + (i % 2), i % 2, 6000 + i as u16), 30u64);
            report.insert(flow(i % 2, 4 + (i % 2), 6100 + i as u16), 30u64);
        }
        let tor0 = SwitchId { role: SwitchRole::Edge, index: 0 };
        let tor2 = SwitchId { role: SwitchRole::Edge, index: 2 };
        let mut depth = BTreeMap::new();
        depth.insert(
            tor2,
            chm_netsim::QueueDepthStat {
                max_depth: 900.0,
                mean_depth: 400.0,
                slot_drops: Vec::new(),
            },
        );
        let mut loc = Localizer::new(FatTree::testbed());
        let l = loc.observe_evidence(EpochEvidence {
            loss_report: &report,
            confidence: &HashMap::new(),
            traffic: &HashMap::new(),
            queue_depth: &depth,
        });
        let rank = |l: &Localization<FiveTuple>, s: SwitchId| {
            l.ranking.iter().position(|&(r, _)| r == s).unwrap()
        };
        assert!(
            rank(&l, tor2) < rank(&l, tor0),
            "the buffering ToR must outrank the shallow one: {:?}",
            l.ranking
        );
        // Telemetry is a per-epoch snapshot: a telemetry-free epoch resets
        // the boost.
        let l2 = loc.observe_epoch(&report, &HashMap::new());
        let s0 = l2.ranking.iter().find(|&&(r, _)| r == tor0).unwrap().1;
        let s2 = l2.ranking.iter().find(|&&(r, _)| r == tor2).unwrap().1;
        assert!((s0 - s2).abs() < 1e-12, "boost must not persist: {l2:?}");
    }

    #[test]
    fn concentrated_drop_timing_outranks_equal_depth() {
        // Two victim groups with symmetric blame; both ToRs report the same
        // mean queue depth and the same drop mass, but ToR 2's drops land
        // in one slot (microburst signature) while ToR 0 bleeds uniformly:
        // the slot-timing evidence must promote ToR 2.
        let mut report = HashMap::new();
        for i in 0..8u32 {
            report.insert(flow(4 + (i % 2), i % 2, 6000 + i as u16), 30u64);
            report.insert(flow(i % 2, 4 + (i % 2), 6100 + i as u16), 30u64);
        }
        let tor0 = SwitchId { role: SwitchRole::Edge, index: 0 };
        let tor2 = SwitchId { role: SwitchRole::Edge, index: 2 };
        let mut depth = BTreeMap::new();
        depth.insert(
            tor0,
            chm_netsim::QueueDepthStat {
                max_depth: 500.0,
                mean_depth: 200.0,
                slot_drops: vec![10.0; 8],
            },
        );
        depth.insert(
            tor2,
            chm_netsim::QueueDepthStat {
                max_depth: 500.0,
                mean_depth: 200.0,
                slot_drops: vec![0.0, 0.0, 80.0, 0.0, 0.0, 0.0, 0.0, 0.0],
            },
        );
        let mut loc = Localizer::new(FatTree::testbed());
        let l = loc.observe_evidence(EpochEvidence {
            loss_report: &report,
            confidence: &HashMap::new(),
            traffic: &HashMap::new(),
            queue_depth: &depth,
        });
        let rank = |s: SwitchId| l.ranking.iter().position(|&(r, _)| r == s).unwrap();
        assert!(
            rank(tor2) < rank(tor0),
            "concentrated drops must outrank uniform ones: {:?}",
            l.ranking
        );
    }

    #[test]
    fn aggregate_only_telemetry_matches_the_pre_slot_localizer() {
        // Exports with empty slot series everywhere must reproduce the pure
        // depth normalization: boost = mean_depth / deepest.
        let mut report = HashMap::new();
        for i in 0..8u32 {
            report.insert(flow(i % 4, 4 + (i % 4), 6300 + i as u16), 20u64);
        }
        let agg = SwitchId { role: SwitchRole::Edge, index: 1 };
        let mut depth = BTreeMap::new();
        depth.insert(
            agg,
            chm_netsim::QueueDepthStat {
                max_depth: 100.0,
                mean_depth: 40.0,
                slot_drops: Vec::new(),
            },
        );
        let mut with_slots = Localizer::new(FatTree::testbed());
        let mut plain = Localizer::new(FatTree::testbed());
        let a = with_slots.observe_evidence(EpochEvidence {
            loss_report: &report,
            confidence: &HashMap::new(),
            traffic: &HashMap::new(),
            queue_depth: &depth,
        });
        let b = plain.observe_evidence(EpochEvidence {
            loss_report: &report,
            confidence: &HashMap::new(),
            traffic: &HashMap::new(),
            queue_depth: &depth,
        });
        assert_eq!(a, b);
    }

    #[test]
    fn snapshot_restore_reproduces_future_rankings() {
        let mut report = HashMap::new();
        let mut traffic = HashMap::new();
        for i in 0..16u32 {
            report.insert(flow(i % 8, (i + 3) % 8, 4200 + i as u16), 9 + i as u64);
            traffic.insert(flow((i + 2) % 8, (i + 5) % 8, 8200 + i as u16), 150u64);
        }
        let mut a = Localizer::new(FatTree::testbed());
        for _ in 0..3 {
            a.observe_epoch(&report, &traffic);
        }
        let snap = a.snapshot();
        let mut b = Localizer::new(FatTree::testbed());
        b.restore(&snap);
        assert_eq!(a.snapshot(), b.snapshot());
        for _ in 0..3 {
            let la = a.observe_epoch(&report, &traffic);
            let lb = b.observe_epoch(&report, &traffic);
            assert_eq!(la, lb, "restored localizer must track the original");
        }
    }

    #[test]
    fn empty_report_decays_toward_silence() {
        let mut loc = Localizer::new(FatTree::testbed());
        let mut report = HashMap::new();
        report.insert(flow(0, 7, 99), 100u64);
        loc.observe_epoch(&report, &HashMap::new());
        let empty: HashMap<FiveTuple, u64> = HashMap::new();
        let mut l = loc.observe_epoch(&empty, &HashMap::new());
        for _ in 0..80 {
            l = loc.observe_epoch(&empty, &HashMap::new());
        }
        assert!(l.per_victim.is_empty());
        // Blame halves per epoch; after 80 silent epochs it is numerically
        // negligible (never asserted to hit exactly zero).
        assert!(l.ranking.iter().all(|&(_, b)| b < 1e-12), "{:?}", l.ranking);
    }
}
