//! Direct tests of the controller's analysis + reconfiguration state
//! machine (§4.3) against hand-built data-plane states — no simulator, so
//! each scenario pins one specific branch of the state machine.

use chamelemon::config::{DataPlaneConfig, RuntimeConfig};
use chamelemon::control::{Controller, NetworkState, TARGET_LOAD};
use chamelemon::dataplane::{CollectedGroup, EdgeDataPlane};

/// Builds one switch's collected group after pushing a hand-made workload.
fn run_switch(
    cfg: &DataPlaneConfig,
    rt: &RuntimeConfig,
    flows: &[(u32, u64, u64)], // (flow, packets, lost)
) -> CollectedGroup<u32> {
    let mut dp = EdgeDataPlane::<u32>::new(cfg.clone(), *rt);
    for &(f, pkts, lost) in flows {
        for i in 0..pkts {
            let h = dp.on_ingress(&f, 0);
            if i >= lost {
                dp.on_egress(&f, 0, h);
            }
        }
    }
    dp.collect_group(0)
}

#[test]
fn healthy_idle_network_keeps_initial_config() {
    let cfg = DataPlaneConfig::small(1);
    let rt = RuntimeConfig::initial(&cfg);
    // 50 small flows, no losses: nothing should move much.
    let flows: Vec<(u32, u64, u64)> = (0..50).map(|f| (f, 3, 0)).collect();
    let g = run_switch(&cfg, &rt, &flows);
    let mut ctl = Controller::<u32>::new(cfg.clone());
    let a = ctl.analyze_epoch(&[g]);
    assert!(a.hh_decode_ok);
    assert!(a.loss_report.is_empty());
    let new_rt = ctl.reconfigure(&a);
    assert_eq!(ctl.state(), NetworkState::Healthy);
    assert_eq!(new_rt.tl, 1);
    assert_eq!(new_rt.partition.m_ll, 0);
}

#[test]
fn hh_overload_raises_th_and_stops() {
    let cfg = DataPlaneConfig::small(2);
    let rt = RuntimeConfig::initial(&cfg);
    // Th = 1 and far more flows than the HH encoder can decode.
    let flows: Vec<(u32, u64, u64)> = (0..5_000).map(|f| (f, 2, 0)).collect();
    let g = run_switch(&cfg, &rt, &flows);
    let mut ctl = Controller::<u32>::new(cfg.clone());
    let a = ctl.analyze_epoch(&[g]);
    assert!(!a.hh_decode_ok, "HH encoder must be overloaded");
    let new_rt = ctl.reconfigure(&a);
    assert!(new_rt.th > rt.th, "Th must be turned up");
    assert_eq!(ctl.state(), NetworkState::Healthy, "no transition on step 1");
}

#[test]
fn hl_expansion_when_delta_hl_fails() {
    let cfg = DataPlaneConfig::small(3);
    // Configure a sane Th so HH decodes, but flood the (minimum-size) HL
    // encoder with more victims than it can decode.
    let mut rt = RuntimeConfig::initial(&cfg);
    rt.th = 50;
    // 400 victim flows of size 4 (< Th → HL candidates), each losing 1.
    let flows: Vec<(u32, u64, u64)> = (0..400).map(|f| (f, 4, 1)).collect();
    let g = run_switch(&cfg, &rt, &flows);
    let mut ctl = Controller::<u32>::new(cfg.clone());
    // Align the controller's deployed runtime with the collected group's.
    let a0 = ctl.analyze_epoch(std::slice::from_ref(&g));
    assert!(a0.hh_decode_ok);
    assert!(
        a0.hl_flowset.is_none(),
        "delta HL must fail: 400 victims in {} buckets",
        rt.partition.m_hl * 3
    );
    let before_hl = ctl.deployed_runtime().partition.m_hl;
    let new_rt = ctl.reconfigure(&a0);
    match ctl.state() {
        NetworkState::Healthy => {
            assert!(
                new_rt.partition.m_hl > before_hl,
                "HL encoder must expand ({} -> {})",
                before_hl,
                new_rt.partition.m_hl
            );
        }
        NetworkState::Ill => {
            assert_eq!(new_rt.partition, cfg.ill_partition);
        }
    }
}

#[test]
fn hl_compression_when_load_low() {
    let cfg = DataPlaneConfig::small(4);
    // Deploy a runtime with an oversized HL encoder, then present a nearly
    // loss-free epoch: the controller should compress back toward the
    // reserved minimum (§4.3.1 step 2, load < 60%).
    let mut rt = RuntimeConfig::initial(&cfg);
    rt.partition = chamelemon::config::Partition {
        m_hh: cfg.m_uf - 256,
        m_hl: 256,
        m_ll: 0,
    };
    rt.th = 100;
    let flows: Vec<(u32, u64, u64)> = (0..300)
        .map(|f| (f, 5, u64::from(f < 3)))
        .collect();
    let g = run_switch(&cfg, &rt, &flows);
    let mut ctl = Controller::<u32>::new(cfg.clone());
    // Make the controller believe the deployed runtime is `rt`.
    let a0 = ctl.analyze_epoch(std::slice::from_ref(&g));
    let _ = ctl.reconfigure(&a0); // sync controller onto its own output
    let a = ctl.analyze_epoch(&[g]);
    if a.hh_decode_ok && a.hl_flowset.is_some() {
        let new_rt = ctl.reconfigure(&a);
        assert!(
            new_rt.partition.m_hl <= 256,
            "HL must not grow on an idle network"
        );
        assert!(new_rt.partition.m_hl >= cfg.min_hl_buckets);
    }
}

#[test]
fn ill_state_recovers_when_victims_disappear() {
    let cfg = DataPlaneConfig::small(5);
    let mut ctl = Controller::<u32>::new(cfg.clone());
    // Force the ill state by simulating its entry conditions: deploy the
    // ill partition via a real overload epoch first.
    let rt0 = RuntimeConfig::initial(&cfg);
    let overload: Vec<(u32, u64, u64)> = (0..3_000).map(|f| (f, 3, 1)).collect();
    for _ in 0..4 {
        let g = run_switch(&cfg, ctl.deployed_runtime(), &overload);
        let a = ctl.analyze_epoch(&[g]);
        ctl.reconfigure(&a);
        if ctl.state() == NetworkState::Ill {
            break;
        }
    }
    assert_eq!(ctl.state(), NetworkState::Ill, "overload must reach ill state");
    // Now a healthy workload: few victims.
    let calm: Vec<(u32, u64, u64)> = (0..500)
        .map(|f| (f, 4, u64::from(f < 5)))
        .collect();
    for _ in 0..4 {
        let g = run_switch(&cfg, ctl.deployed_runtime(), &calm);
        let a = ctl.analyze_epoch(&[g]);
        ctl.reconfigure(&a);
        if ctl.state() == NetworkState::Healthy {
            break;
        }
    }
    assert_eq!(ctl.state(), NetworkState::Healthy);
    assert_eq!(ctl.deployed_runtime().partition.m_ll, 0);
    assert_eq!(ctl.deployed_runtime().tl, 1);
    let _ = rt0;
}

#[test]
fn multi_switch_cross_traffic_decodes_losses() {
    // Flows enter at switch 0 and exit at switch 1: the cumulative
    // upstream/downstream construction must still isolate the victims.
    let cfg = DataPlaneConfig::small(6);
    let rt = RuntimeConfig::initial(&cfg);
    let mut in_dp = EdgeDataPlane::<u32>::new(cfg.clone(), rt);
    let mut out_dp = EdgeDataPlane::<u32>::new(cfg.clone(), rt);
    for f in 0..200u32 {
        let lost = u64::from(f % 20 == 0);
        for i in 0..5u64 {
            let h = in_dp.on_ingress(&f, 0);
            if i >= lost {
                out_dp.on_egress(&f, 0, h);
            }
        }
    }
    let ctl = Controller::<u32>::new(cfg);
    let a = ctl.analyze_epoch(&[in_dp.collect_group(0), out_dp.collect_group(0)]);
    assert!(a.hh_decode_ok);
    assert_eq!(a.loss_report.len(), 10);
    for (f, &l) in &a.loss_report {
        assert_eq!(f % 20, 0);
        assert_eq!(l, 1);
    }
}

#[test]
fn target_load_constant_is_paper_value() {
    assert!((TARGET_LOAD - 0.70).abs() < 1e-12);
}

#[test]
fn analysis_estimates_flow_count_per_switch() {
    let cfg = DataPlaneConfig::small(7);
    let rt = RuntimeConfig::initial(&cfg);
    let flows: Vec<(u32, u64, u64)> = (0..600).map(|f| (f, 2, 0)).collect();
    let g = run_switch(&cfg, &rt, &flows);
    let ctl = Controller::<u32>::new(cfg);
    let a = ctl.analyze_epoch(&[g]);
    let est = a.est_flows_per_switch[0];
    assert!((est - 600.0).abs() / 600.0 < 0.2, "estimate {est}");
}

#[test]
fn empty_collection_is_tolerated_and_keeps_runtime() {
    // A fully lossy control channel: no switch's report arrives. The
    // controller must neither panic nor react — the deployed runtime is
    // redeployed unchanged and the state belief is untouched.
    let cfg = DataPlaneConfig::small(8);
    let mut ctl = Controller::<u32>::new(cfg);
    let before = *ctl.deployed_runtime();
    let a = ctl.analyze_epoch(&[]);
    assert_eq!(a.switches_reporting, 0);
    assert!(a.loss_report.is_empty());
    assert!(a.hl_flowset.is_none() && a.ll_flowset.is_none());
    assert_eq!(a.est_flows, 0.0);
    let rt = ctl.reconfigure(&a);
    assert_eq!(rt, before);
    assert_eq!(*ctl.deployed_runtime(), before);
    assert_eq!(ctl.state(), NetworkState::Healthy);
}

#[test]
fn partial_collection_analyzes_received_subset() {
    // Two switches monitored, one report lost: the analysis proceeds on the
    // survivor and records how many switches actually reported.
    let cfg = DataPlaneConfig::small(9);
    let rt = RuntimeConfig::initial(&cfg);
    let flows: Vec<(u32, u64, u64)> = (0..80).map(|f| (f, 4, 0)).collect();
    let g0 = run_switch(&cfg, &rt, &flows);
    let _g1_lost = run_switch(&cfg, &rt, &flows);
    let mut ctl = Controller::<u32>::new(cfg);
    let a = ctl.analyze_epoch(&[g0]);
    assert_eq!(a.switches_reporting, 1);
    assert!(a.hh_decode_ok);
    assert_eq!(a.est_flows_per_switch.len(), 1);
    // Reconfiguration still proceeds on partial evidence.
    let new_rt = ctl.reconfigure(&a);
    new_rt.validate(&DataPlaneConfig::small(9)).unwrap();
}
