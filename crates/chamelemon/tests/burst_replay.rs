//! The burst replay (`Simulator::run_epoch_burst`) must be observationally
//! identical to the per-packet replay (`Simulator::run_epoch`): same epoch
//! report, same sketch state on every edge switch — the batching is purely
//! a speed optimization.

use chamelemon::config::DataPlaneConfig;
use chamelemon::dataplane::{EdgeDataPlane, Hierarchy};
use chamelemon::RuntimeConfig;
use chm_common::FiveTuple;
use chm_netsim::impair::{
    ClockSkew, Duplication, GilbertElliott, ImpairmentSet, Reordering,
};
use chm_netsim::sim::{BurstHooks, EdgeHooks};
use chm_netsim::{FatTree, SimConfig, Simulator};
use chm_workloads::{testbed_trace, LossPlan, VictimSelection, WorkloadKind};

struct Edges(Vec<EdgeDataPlane<FiveTuple>>);

impl EdgeHooks<FiveTuple> for Edges {
    fn on_ingress(&mut self, edge: usize, f: &FiveTuple, ts: u8) -> u8 {
        self.0[edge].on_ingress(f, ts).to_tag()
    }
    fn on_egress(&mut self, edge: usize, f: &FiveTuple, ts: u8, tag: u8) {
        self.0[edge].on_egress(f, ts, Hierarchy::from_tag(tag));
    }
}

impl BurstHooks<FiveTuple> for Edges {
    fn on_ingress_burst(&mut self, edge: usize, f: &FiveTuple, ts: u8, pkts: u64)
        -> [(u8, u64); 3] {
        self.0[edge]
            .on_ingress_burst(f, ts, pkts)
            .map(|(h, n)| (h.to_tag(), n))
    }
    fn on_egress_burst(&mut self, edge: usize, f: &FiveTuple, ts: u8, tag: u8, delivered: u64) {
        self.0[edge].on_egress_burst(f, ts, Hierarchy::from_tag(tag), delivered);
    }
}

fn edges(cfg: &DataPlaneConfig, rt: &RuntimeConfig, n: usize) -> Edges {
    Edges((0..n).map(|_| EdgeDataPlane::new(cfg.clone(), *rt)).collect())
}

#[test]
fn burst_replay_is_byte_identical_to_per_packet_replay() {
    let topo = FatTree::testbed();
    let n_edges = topo.n_edge();
    let cfg = DataPlaneConfig::small(0xb0b0);
    // Exercise every hierarchy: thresholds that split flows across LL/HL/HH
    // and a sample rate below 1.
    let mut rt = RuntimeConfig::initial(&cfg);
    rt.partition = chamelemon::Partition { m_hh: 256, m_hl: 192, m_ll: 64 };
    rt.th = 12;
    rt.tl = 4;
    rt.sample_threshold = 30_000;

    let trace = testbed_trace(WorkloadKind::Dctcp, 1_500, 8, 0x5151);
    let plan = LossPlan::build(&trace, VictimSelection::RandomRatio(0.15), 0.05, 0x7272);

    let mut per_packet = edges(&cfg, &rt, n_edges);
    let mut burst = edges(&cfg, &rt, n_edges);
    let mut sim_a = Simulator::new(topo.clone(), SimConfig::default());
    let mut sim_b = Simulator::new(topo, SimConfig::default());

    for _ in 0..2 {
        let ra = sim_a.run_epoch(&trace, &plan, &mut per_packet);
        let rb = sim_b.run_epoch_burst(&trace, &plan, &mut burst);
        assert_eq!(ra.delivered, rb.delivered);
        assert_eq!(ra.lost, rb.lost);
        assert_eq!(ra.dropped_at, rb.dropped_at);
        assert_eq!(ra.lost_at, rb.lost_at);
        assert_eq!(ra.hops_histogram, rb.hops_histogram);
        assert_eq!(ra.queue_depth, rb.queue_depth);
        assert_eq!(ra.epoch, rb.epoch);
    }

    for (e, (a, b)) in per_packet.0.iter().zip(&burst.0).enumerate() {
        for ts in 0..2u8 {
            let (ga, gb) = (a.group(ts), b.group(ts));
            assert_eq!(ga.classifier, gb.classifier, "edge {e} ts {ts} classifier");
            assert_eq!(ga.ingress_pkts, gb.ingress_pkts, "edge {e} ts {ts} ingress ctr");
            assert_eq!(ga.egress_pkts, gb.egress_pkts, "edge {e} ts {ts} egress ctr");
            assert_eq!(ga.up_hh, gb.up_hh, "edge {e} ts {ts} up_hh");
            assert_eq!(ga.up_hl, gb.up_hl, "edge {e} ts {ts} up_hl");
            assert_eq!(ga.up_ll, gb.up_ll, "edge {e} ts {ts} up_ll");
            assert_eq!(ga.down_hl, gb.down_hl, "edge {e} ts {ts} down_hl");
            assert_eq!(ga.down_ll, gb.down_ll, "edge {e} ts {ts} down_ll");
        }
    }
}

#[test]
fn impaired_burst_replay_is_byte_identical_to_per_packet_replay() {
    // The PR-2 equivalence contract must survive every fabric impairment:
    // the impairment layer lives above the hook boundary, so the scenario
    // replay paths consult one per-flow realization and stay identical.
    let topo = FatTree::testbed();
    let n_edges = topo.n_edge();
    let cfg = DataPlaneConfig::small(0xb1b1);
    let mut rt = RuntimeConfig::initial(&cfg);
    rt.partition = chamelemon::Partition { m_hh: 256, m_hl: 192, m_ll: 64 };
    rt.th = 12;
    rt.tl = 4;
    rt.sample_threshold = 30_000;

    let trace = testbed_trace(WorkloadKind::Hadoop, 1_000, 8, 0x6161);
    let plan = LossPlan::build(&trace, VictimSelection::RandomRatio(0.15), 0.05, 0x8282);
    let imp = ImpairmentSet {
        seed: 0x19a9_5eed,
        congestion: Some(chm_netsim::CongestionModel {
            derates: vec![chm_netsim::Derate::Switch {
                role: chm_netsim::SwitchRole::Core,
                index: 0,
                factor: 0.3,
            }],
            ..chm_netsim::CongestionModel::calibrated()
        }),
        queue: None,
        gilbert_elliott: Some(GilbertElliott::bursty()),
        duplication: Some(Duplication { prob: 0.08 }),
        reordering: Some(Reordering { prob: 0.3, window: 6 }),
        clock_skew: Some(ClockSkew { max_frac: 0.1 }),
    };

    let mut per_packet = edges(&cfg, &rt, n_edges);
    let mut burst = edges(&cfg, &rt, n_edges);
    let mut sim_a = Simulator::new(topo.clone(), SimConfig::default());
    let mut sim_b = Simulator::new(topo, SimConfig::default());

    for _ in 0..3 {
        let ra = sim_a.run_epoch_scenario(&trace, &plan, &imp, &mut per_packet);
        let rb = sim_b.run_epoch_burst_scenario(&trace, &plan, &imp, &mut burst);
        assert_eq!(ra.delivered, rb.delivered);
        assert_eq!(ra.lost, rb.lost);
        assert_eq!(ra.dropped_at, rb.dropped_at);
        assert_eq!(ra.lost_at, rb.lost_at);
        assert_eq!(ra.hops_histogram, rb.hops_histogram);
        assert_eq!(ra.queue_depth, rb.queue_depth);
        assert_eq!(ra.epoch, rb.epoch);
    }

    for (e, (a, b)) in per_packet.0.iter().zip(&burst.0).enumerate() {
        for ts in 0..2u8 {
            let (ga, gb) = (a.group(ts), b.group(ts));
            assert_eq!(ga.classifier, gb.classifier, "edge {e} ts {ts} classifier");
            assert_eq!(ga.ingress_pkts, gb.ingress_pkts, "edge {e} ts {ts} ingress ctr");
            assert_eq!(ga.egress_pkts, gb.egress_pkts, "edge {e} ts {ts} egress ctr");
            assert_eq!(ga.up_hh, gb.up_hh, "edge {e} ts {ts} up_hh");
            assert_eq!(ga.up_hl, gb.up_hl, "edge {e} ts {ts} up_hl");
            assert_eq!(ga.up_ll, gb.up_ll, "edge {e} ts {ts} up_ll");
            assert_eq!(ga.down_hl, gb.down_hl, "edge {e} ts {ts} down_hl");
            assert_eq!(ga.down_ll, gb.down_ll, "edge {e} ts {ts} down_ll");
        }
    }
}
