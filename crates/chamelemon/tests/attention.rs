//! End-to-end tests of the full ChameleMon loop over the simulated testbed:
//! capture → collect → analyze → shift attention (§2's four steps).

use chamelemon::config::DataPlaneConfig;
use chamelemon::control::NetworkState;
use chamelemon::ChameleMon;
use chm_common::FiveTuple;
use chm_workloads::{testbed_trace, LossPlan, Trace, VictimSelection, WorkloadKind};
use std::collections::HashMap;

fn truth_losses(plan: &LossPlan<FiveTuple>) -> usize {
    plan.num_victims()
}

#[test]
fn healthy_network_reports_exact_losses() {
    let mut sys = ChameleMon::testbed(DataPlaneConfig::small(1));
    let trace = testbed_trace(WorkloadKind::Dctcp, 800, 8, 2);
    let plan = LossPlan::build(&trace, VictimSelection::RandomRatio(0.05), 0.02, 3);

    // Let the controller settle for a few epochs.
    let mut last = None;
    for _ in 0..4 {
        last = Some(sys.run_epoch(&trace, &plan));
    }
    let out = last.unwrap();
    assert_eq!(sys.controller.state(), NetworkState::Healthy);

    // Every victim flow must be reported with its exact loss count: in the
    // healthy state ChameleMon monitors *all* victim flows.
    let reported = &out.analysis.loss_report;
    assert_eq!(reported.len(), truth_losses(&plan), "victim count mismatch");
    for (f, &lost) in &out.report.lost {
        assert_eq!(reported.get(f), Some(&lost), "flow {f:?}");
    }
}

#[test]
fn edge_port_counters_account_for_every_packet() {
    // The collected ingress/egress port counters are exact: summed over
    // the edges, ingress equals the packets sent and the ingress−egress
    // asymmetry equals the fabric's total loss. (Exact equality needs a
    // duplication-free fabric — ChameleMon::run_epoch is one; fabric
    // duplicates would inflate egress.)
    let mut sys = ChameleMon::testbed(DataPlaneConfig::small(7));
    let trace = testbed_trace(WorkloadKind::Vl2, 600, 8, 8);
    let plan = LossPlan::build(&trace, VictimSelection::RandomRatio(0.1), 0.05, 9);
    for _ in 0..3 {
        let out = sys.run_epoch(&trace, &plan);
        let ingress: u64 = out.analysis.edge_ingress.iter().sum();
        let egress: u64 = out.analysis.edge_egress.iter().sum();
        assert_eq!(ingress, out.report.total_sent());
        assert_eq!(ingress - egress, out.report.lost.values().sum::<u64>());
    }
}

#[test]
fn accumulation_tasks_work_alongside_loss_detection() {
    let mut sys = ChameleMon::testbed(DataPlaneConfig::small(4));
    let trace = testbed_trace(WorkloadKind::Vl2, 600, 8, 5);
    let plan = LossPlan::build(&trace, VictimSelection::RandomRatio(0.03), 0.02, 6);
    let mut outcome = None;
    for _ in 0..3 {
        outcome = Some(sys.run_epoch(&trace, &plan));
    }
    let out = outcome.unwrap();

    // Cardinality estimate should track the number of flows.
    let est = out.analysis.est_flows;
    let re = (est - 600.0).abs() / 600.0;
    assert!(re < 0.25, "cardinality {est} vs 600 (re {re:.2})");

    // Flow-size estimates for the largest flows should be close.
    let truth: HashMap<FiveTuple, u64> = trace.size_map();
    let top = trace.top_n(10);
    let collected: Vec<_> = sys.edges.iter().map(|e| e.collect_group(0)).collect();
    let _ = &collected; // sizes come from the analysis HH flowsets
    for &(f, true_size) in &top.flows {
        let est = chamelemon::tasks::heavy_hitters(&out.analysis, 0)
            .get(&f)
            .copied()
            .unwrap_or(0);
        if est > 0 {
            let re = (est as f64 - true_size as f64).abs() / true_size as f64;
            assert!(re < 0.2, "flow {f:?}: est {est} vs {true_size}");
        }
        let _ = truth.get(&f);
    }
}

#[test]
fn overload_transitions_to_ill_and_samples() {
    // Small data plane + many victim flows: the controller cannot monitor
    // all victims and must shift to the ill state (§4.3.1 step 2).
    let mut sys = ChameleMon::testbed(DataPlaneConfig::small(7));
    let trace = testbed_trace(WorkloadKind::Dctcp, 6_000, 8, 8);
    let plan = LossPlan::build(&trace, VictimSelection::RandomRatio(0.5), 0.05, 9);

    let mut became_ill_at = None;
    for epoch in 0..6 {
        let out = sys.run_epoch(&trace, &plan);
        let _ = out;
        if sys.controller.state() == NetworkState::Ill && became_ill_at.is_none() {
            became_ill_at = Some(epoch);
        }
    }
    let when = became_ill_at.expect("controller never transitioned to ill");
    assert!(when <= 3, "took {when} epochs to notice the ill state");

    let rt = sys.controller.deployed_runtime();
    assert!(rt.partition.m_ll > 0, "ill state must allocate LL encoders");
    assert!(rt.tl > 1, "ill state must select HLs via Tl > 1");
}

#[test]
fn recovery_transitions_back_to_healthy() {
    let mut sys = ChameleMon::testbed(DataPlaneConfig::small(10));
    let trace = testbed_trace(WorkloadKind::Dctcp, 6_000, 8, 11);
    let bad = LossPlan::build(&trace, VictimSelection::RandomRatio(0.5), 0.05, 12);
    let good = LossPlan::build(&trace, VictimSelection::RandomRatio(0.01), 0.02, 13);

    for _ in 0..6 {
        sys.run_epoch(&trace, &bad);
    }
    assert_eq!(sys.controller.state(), NetworkState::Ill);

    let mut recovered_after = None;
    for epoch in 0..6 {
        sys.run_epoch(&trace, &good);
        if sys.controller.state() == NetworkState::Healthy {
            recovered_after = Some(epoch);
            break;
        }
    }
    let when = recovered_after.expect("controller never recovered");
    assert!(when <= 3, "took {when} epochs to recover (paper: ≤ 3)");
    let rt = sys.controller.deployed_runtime();
    assert_eq!(rt.partition.m_ll, 0, "healthy state has no LL encoder");
    assert_eq!(rt.tl, 1, "healthy state sets Tl to 1");
}

#[test]
fn reconfiguration_applies_next_epoch_not_current() {
    let mut sys = ChameleMon::testbed(DataPlaneConfig::small(14));
    let trace = testbed_trace(WorkloadKind::Hadoop, 3_000, 8, 15);
    let plan = LossPlan::none();

    let first = sys.run_epoch(&trace, &plan);
    // Epoch 0 ran under the initial configuration regardless of what the
    // controller decided afterwards.
    assert_eq!(first.config_in_effect.th, 1);
    let second = sys.run_epoch(&trace, &plan);
    // The runtime staged after epoch 0's analysis is what the controller
    // considers deployed while epoch 1 runs.
    assert_eq!(second.config_in_effect, first.staged_runtime);
}

/// Keep a deterministic CACHE-workload smoke test: extreme skew must not
/// crash or wedge the state machine.
#[test]
fn cache_workload_smoke() {
    let mut sys = ChameleMon::testbed(DataPlaneConfig::small(16));
    let trace: Trace<FiveTuple> = testbed_trace(WorkloadKind::Cache, 4_000, 8, 17);
    let plan = LossPlan::build(&trace, VictimSelection::RandomRatio(0.1), 0.02, 18);
    for _ in 0..5 {
        let out = sys.run_epoch(&trace, &plan);
        // Loss report never invents flows that exist nowhere.
        for f in out.analysis.loss_report.keys() {
            assert!(trace.flows.iter().any(|(g, _)| g == f), "ghost flow {f:?}");
        }
    }
}
