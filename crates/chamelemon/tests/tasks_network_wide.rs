//! Network-wide measurement-task tests over the full simulated testbed:
//! the §4.2 tasks computed from sketches collected across all four edge
//! switches, validated against the trace's ground truth.

use chamelemon::config::DataPlaneConfig;
use chamelemon::{tasks, ChameleMon, CollectedGroup, EpochAnalysis};
use chm_common::metrics::{detection_score, relative_error, size_entropy, size_histogram};
use chm_common::FiveTuple;
use chm_workloads::trace::ip_host;
use chm_workloads::{testbed_trace, LossPlan, Trace, WorkloadKind};
use std::collections::{HashMap, HashSet};

struct Run {
    analysis: EpochAnalysis<FiveTuple>,
    collected: Vec<CollectedGroup<FiveTuple>>,
    truth: HashMap<FiveTuple, u64>,
}

/// Settles thresholds over two epochs, then replays one more epoch by hand
/// (no flip) so the collected sketches stay available for task queries.
fn run_once(trace: &Trace<FiveTuple>, seed: u64) -> Run {
    let mut sys = ChameleMon::testbed(DataPlaneConfig::small(seed));
    let plan = LossPlan::none();
    sys.run_epoch(trace, &plan);
    sys.run_epoch(trace, &plan);
    let ts = sys.simulator.current_ts_bit();
    let topo = sys.simulator.topology.clone();
    for &(f, pkts) in &trace.flows {
        let in_edge = topo.edge_of_host(ip_host(f.src_ip) as usize);
        let out_edge = topo.edge_of_host(ip_host(f.dst_ip) as usize);
        for _ in 0..pkts {
            let h = sys.edges[in_edge].on_ingress(&f, ts);
            sys.edges[out_edge].on_egress(&f, ts, h);
        }
    }
    let collected: Vec<_> = sys.edges.iter().map(|e| e.collect_group(ts)).collect();
    let analysis = sys.controller.analyze_epoch(&collected);
    Run { analysis, collected, truth: trace.size_map() }
}

#[test]
fn network_wide_heavy_hitters() {
    let trace = testbed_trace(WorkloadKind::Vl2, 3_000, 8, 31);
    let r = run_once(&trace, 31);
    let delta_h = 300u64;
    let truth_hh: HashSet<FiveTuple> = r
        .truth
        .iter()
        .filter(|(_, &v)| v > delta_h)
        .map(|(&f, _)| f)
        .collect();
    assert!(!truth_hh.is_empty(), "VL2 draw should contain heavy hitters");
    let reported = tasks::heavy_hitters(&r.analysis, delta_h);
    let score = detection_score(reported.keys().copied(), &truth_hh);
    assert!(score.f1 > 0.9, "HH F1 {:.3} ({} true)", score.f1, truth_hh.len());
}

#[test]
fn network_wide_flow_sizes() {
    let trace = testbed_trace(WorkloadKind::Dctcp, 2_000, 8, 32);
    let r = run_once(&trace, 32);
    let mut total_re = 0.0;
    for (&f, &true_size) in r.truth.iter() {
        let est = tasks::flow_size(&r.analysis, &r.collected, &f);
        total_re += (est as f64 - true_size as f64).abs() / true_size as f64;
    }
    let are = total_re / r.truth.len() as f64;
    assert!(are < 0.3, "flow-size ARE {are:.3}");
}

#[test]
fn network_wide_cardinality_and_entropy() {
    let trace = testbed_trace(WorkloadKind::Hadoop, 4_000, 8, 33);
    let r = run_once(&trace, 33);
    let card = tasks::cardinality(&r.collected);
    assert!(
        relative_error(4_000.0, card) < 0.2,
        "cardinality {card:.0} vs 4000"
    );
    let max = r.truth.values().copied().max().unwrap() as usize;
    let true_dist = size_histogram(&r.truth, max);
    let true_h = size_entropy(&true_dist);
    let est_h = tasks::entropy(&r.analysis);
    assert!(
        relative_error(true_h, est_h) < 0.35,
        "entropy {est_h:.3} vs {true_h:.3}"
    );
}

#[test]
fn network_wide_heavy_changes() {
    let a = testbed_trace(WorkloadKind::Dctcp, 1_500, 8, 34);
    // Epoch B: same flows, but the top flows collapse to a single packet.
    let mut b = a.clone();
    let top: HashSet<FiveTuple> = a.top_n(10).flows.iter().map(|&(f, _)| f).collect();
    for (f, s) in b.flows.iter_mut() {
        if top.contains(f) {
            *s = 1;
        }
    }
    let ra = run_once(&a, 35);
    let rb = run_once(&b, 35);
    let delta_c = 150;
    let truth: HashSet<FiveTuple> = a
        .flows
        .iter()
        .filter(|(f, s)| top.contains(f) && s.abs_diff(1) > delta_c)
        .map(|&(f, _)| f)
        .collect();
    assert!(!truth.is_empty(), "top flows must exceed the change threshold");
    let changes =
        tasks::heavy_changes(&ra.analysis, &ra.collected, &rb.analysis, &rb.collected, delta_c);
    let score = detection_score(changes, &truth);
    assert!(score.recall > 0.85, "heavy-change recall {:.3}", score.recall);
}
