//! Appendix B in practice: why the controller must wait for in-flight
//! packets (and clock error) before collecting the downstream encoders.
//!
//! If the controller snapshots the sketches while packets that already
//! passed an upstream encoder are still in flight toward their egress
//! switch, the upstream−downstream delta contains those packets — they are
//! indistinguishable from losses and decode as *false victims*. Waiting
//! `sync_error + max_transit` (the appendix recommends ~10 ms for ≤5-hop
//! DCNs) empties the pipeline first.

use chamelemon::config::{DataPlaneConfig, RuntimeConfig};
use chamelemon::control::Controller;
use chamelemon::dataplane::{EdgeDataPlane, Hierarchy};
use chm_netsim::EpochClock;

/// Drives two switches; `in_flight` packets are inserted upstream but not
/// yet downstream at collection time.
fn run_with_in_flight(
    in_flight: usize,
) -> (usize /* reported victims */, usize /* true victims */) {
    let cfg = DataPlaneConfig::small(77);
    let rt = RuntimeConfig::initial(&cfg);
    let mut ingress = EdgeDataPlane::<u32>::new(cfg.clone(), rt);
    let mut egress = EdgeDataPlane::<u32>::new(cfg.clone(), rt);

    // 300 flows × 4 packets; flows 0..5 really lose one packet each.
    let mut pending: Vec<(u32, Hierarchy)> = Vec::new();
    for f in 0..300u32 {
        for i in 0..4u64 {
            let h = ingress.on_ingress(&f, 0);
            let truly_lost = f < 5 && i == 0;
            if truly_lost {
                continue;
            }
            // The last `in_flight` packets of the epoch are still in the
            // fabric when the controller collects.
            if f >= 300 - (in_flight as u32) && i == 3 {
                pending.push((f, h));
            } else {
                egress.on_egress(&f, 0, h);
            }
        }
    }
    let collected = vec![ingress.collect_group(0), egress.collect_group(0)];
    let ctl = Controller::<u32>::new(cfg);
    let analysis = ctl.analyze_epoch(&collected);
    // (The in-flight packets arrive afterwards — too late.)
    drop(pending);
    (analysis.loss_report.len(), 5)
}

#[test]
fn premature_collection_reports_false_victims() {
    let (reported, truth) = run_with_in_flight(40);
    assert!(
        reported > truth,
        "in-flight packets must surface as false victims (got {reported})"
    );
}

#[test]
fn drained_pipeline_reports_exact_victims() {
    let (reported, truth) = run_with_in_flight(0);
    assert_eq!(reported, truth);
}

#[test]
fn collection_window_excludes_unsafe_times() {
    // The §D.2 budget: 50 ms epochs, 0.5 ms sync error, 6.88 ms transit
    // wait, ~3.45 ms of actual collection.
    let clock = EpochClock::new(50.0);
    let sync = 0.5;
    let transit = 6.88;
    let dur = 3.45;
    // Immediately after the flip: unsafe (in-flight packets).
    assert!(!clock.collection_window_ok(50.5, sync, transit, dur));
    // The §D.2 schedule starts collecting the downstream encoders at
    // ~+7.88 ms; that instant must be safe.
    assert!(clock.collection_window_ok(50.0 + sync + transit + 0.01, sync, transit, dur));
    // Too close to the next flip: unsafe (next epoch's inserts).
    assert!(!clock.collection_window_ok(99.0, sync, transit, dur));
}
