//! Allocation audit of the per-packet hot path: `TowerSketch` and
//! `FermatSketch` inserts must never allocate — the packet engine's speed
//! rests on it. Verified with a counting global allocator (the
//! test-binary equivalent of a debug-assertion-gated allocation counter:
//! it only exists here, costs nothing in the shipped crates, and fails the
//! suite loudly if an allocation sneaks into the hot path).

use chamelemon_repro::chm_fermat::{DecodeScratch, FermatConfig, FermatSketch};
use chamelemon_repro::chm_tower::{TowerConfig, TowerSketch};
use chamelemon_repro::chm_common::FiveTuple;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// chm-lint: allow(unsafe-block, "counting-allocator shim: implementing GlobalAlloc is inherently unsafe and this type exists only in this test binary")
unsafe impl GlobalAlloc for CountingAlloc {
    // chm-lint: allow(unsafe-block, "bumps a counter then delegates to System.alloc with the caller's layout unchanged")
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    // chm-lint: allow(unsafe-block, "pure delegation to System.dealloc; pointer and layout come straight from the caller")
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    // chm-lint: allow(unsafe-block, "bumps a counter then delegates to System.realloc with the caller's arguments unchanged")
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    f();
    ALLOCATIONS.load(Ordering::SeqCst) - before
}

/// Minimum over two passes: one-time process-level allocations (lazy
/// statics, TLS, harness bookkeeping racing on the global counter) can
/// land in any single window; a hot path that truly allocates shows up in
/// every pass.
fn steady_allocations_during(mut f: impl FnMut()) -> u64 {
    let a = allocations_during(&mut f);
    let b = allocations_during(&mut f);
    a.min(b)
}

fn tuple(i: u32) -> FiveTuple {
    FiveTuple {
        src_ip: 0x0a00_0000 | i,
        dst_ip: 0x0b00_0000 | i.rotate_left(7),
        src_port: (i % 50_000) as u16,
        dst_port: 443,
        proto: 17,
    }
}

/// One `#[test]` on purpose: the allocation counter is process-global, and
/// concurrently running tests would land their allocations in each other's
/// measured windows.
#[test]
fn hot_paths_do_not_allocate() {
    tower_insert_does_not_allocate();
    fermat_insert_does_not_allocate();
    warmed_dense_decode_reuses_scratch_buffers();
}

fn tower_insert_does_not_allocate() {
    let mut t = TowerSketch::new(TowerConfig::paper_default(1));
    // Warm-up (first touches, lazy statics).
    for i in 0..64u64 {
        t.insert_and_query(i);
    }
    let n = steady_allocations_during(|| {
        for i in 0..20_000u64 {
            std::hint::black_box(t.insert_and_query(i));
        }
    });
    assert_eq!(n, 0, "TowerSketch::insert_and_query allocated {n} times");
    let n = steady_allocations_during(|| {
        for i in 0..5_000u64 {
            std::hint::black_box(t.insert_burst(i, 25, 3, 10));
        }
    });
    assert_eq!(n, 0, "TowerSketch::insert_burst allocated {n} times");
}

fn fermat_insert_does_not_allocate() {
    let mut s = FermatSketch::<FiveTuple>::new(FermatConfig::standard(4096, 2));
    for i in 0..64u32 {
        s.insert(&tuple(i));
    }
    let n = steady_allocations_during(|| {
        for i in 0..20_000u32 {
            s.insert(&tuple(i));
        }
    });
    assert_eq!(n, 0, "FermatSketch::insert allocated {n} times");
    let n = steady_allocations_during(|| {
        for i in 0..5_000u32 {
            s.insert_weighted(&tuple(i), 3);
        }
    });
    assert_eq!(n, 0, "FermatSketch::insert_weighted allocated {n} times");
}

fn warmed_dense_decode_reuses_scratch_buffers() {
    // After one warm-up decode, the dense-path scratch decode should not
    // grow its bucket buffers or queue again; only the result flowset may
    // allocate. We bound it loosely: far fewer allocations than flows.
    let mut s = FermatSketch::<u32>::new(FermatConfig::standard(2048, 3));
    for i in 0..3_000u32 {
        s.insert(&i);
    }
    let mut scratch = DecodeScratch::new();
    let r = s.decode_with(&mut scratch);
    assert!(r.success);
    scratch.recycle(r);
    let n = steady_allocations_during(|| {
        let r = s.decode_with(&mut scratch);
        assert!(r.success);
        std::hint::black_box(r.flows.len());
    });
    assert!(
        n < 100,
        "warmed decode_with allocated {n} times (buffers not reused?)"
    );
}
