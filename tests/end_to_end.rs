//! Cross-crate integration tests: the complete ChameleMon pipeline plus the
//! baseline comparisons, exercised together the way the evaluation uses
//! them.

use chamelemon::config::DataPlaneConfig;
use chamelemon::ChameleMon;
use chm_baselines::{AccumulationSketch, CmSketch, ElasticSketch, FlowRadar, LossDetector, LossRadar};
use chm_common::metrics::{average_relative_error, detection_score};
use chm_fermat::{FermatConfig, FermatSketch};
use chm_tower::{TowerConfig, TowerSketch};
use chm_workloads::{caida_like_trace, testbed_trace, LossPlan, VictimSelection, WorkloadKind};
use std::collections::{HashMap, HashSet};

/// The three loss detectors, given adequate memory, agree exactly on the
/// victim set and per-flow loss counts.
#[test]
fn loss_detectors_agree_on_ground_truth() {
    let trace = caida_like_trace(3_000, 1);
    // Random victims (not the largest) keep the per-packet replay and the
    // LossRadar memory requirement small.
    let plan = LossPlan::build(&trace, VictimSelection::RandomN(60), 0.05, 2);
    let (delivered, lost) = plan.apply_to_trace(&trace, 3);

    // FermatSketch pair.
    let cfg = FermatConfig::standard(200, 50);
    let mut up = FermatSketch::<u32>::new(cfg);
    let mut down = FermatSketch::<u32>::new(cfg);
    // FlowRadar + LossRadar.
    let mut fr = FlowRadar::<u32>::new(256 * 1024, 51);
    let mut lr = LossRadar::<u32>::new(64 * 1024, 52);

    for (&f, &d) in &delivered {
        let l = lost.get(&f).copied().unwrap_or(0);
        up.insert_weighted(&f, (d + l) as i64);
        down.insert_weighted(&f, d as i64);
        for seq in 0..(d + l) as u32 {
            fr.observe_upstream(&f, seq);
            lr.observe_upstream(&f, seq);
            if seq as u64 >= l {
                fr.observe_downstream(&f, seq);
                lr.observe_downstream(&f, seq);
            }
        }
    }
    up.sub_assign_sketch(&down);
    let fermat = up.decode();
    assert!(fermat.success);
    let fermat_losses: HashMap<u32, u64> =
        fermat.flows.iter().map(|(&f, &c)| (f, c as u64)).collect();
    let fr_losses = fr.decode_losses().expect("FlowRadar decode");
    let lr_losses = lr.decode_losses().expect("LossRadar decode");

    assert_eq!(fermat_losses, lost);
    assert_eq!(fr_losses, lost);
    assert_eq!(lr_losses, lost);
}

/// Tower+Fermat flow-size accuracy is competitive with (not wildly worse
/// than) CM and Elastic at equal memory — the Figure-11 sanity check.
#[test]
fn tower_fermat_competitive_on_flow_size() {
    let trace = caida_like_trace(20_000, 4);
    let truth = trace.size_map();
    let stream = trace.packet_stream(5);
    let budget = 200_000;

    let th = 250u64;
    let mut tower = TowerSketch::new(TowerConfig::sized(budget * 3 / 4, 6));
    let mut fermat = FermatSketch::<u32>::new(FermatConfig::standard(budget / 4 / 8 / 3, 7));
    let mut cm = CmSketch::new(budget, 8);
    let mut elastic = ElasticSketch::<u32>::new(budget, 9);

    for f in &stream {
        let size = tower.insert_and_query(*f as u64);
        if size >= th {
            fermat.insert(f);
        }
        AccumulationSketch::<u32>::insert(&mut cm, f);
        elastic.insert(f);
    }
    let hh = fermat.decode();
    assert!(hh.success, "HH encoder must decode at this load");

    let tf_est: HashMap<u32, u64> = truth
        .keys()
        .map(|f| {
            let e = match hh.flows.get(f) {
                Some(&q) => th + q.max(0) as u64,
                None => tower.query_clamped(*f as u64),
            };
            (*f, e)
        })
        .collect();
    let cm_est: HashMap<u32, u64> = truth
        .keys()
        .map(|f| (*f, AccumulationSketch::<u32>::estimate(&cm, f)))
        .collect();
    let el_est: HashMap<u32, u64> = truth.keys().map(|f| (*f, elastic.estimate(f))).collect();

    let are_tf = average_relative_error(&truth, &tf_est);
    let are_cm = average_relative_error(&truth, &cm_est);
    let are_el = average_relative_error(&truth, &el_est);
    // The paper reports Tower+Fermat beating CM by ~4.5x at 200 KB; we only
    // assert the ordering and a sane absolute level here.
    assert!(are_tf < are_cm, "Tower+Fermat {are_tf:.3} vs CM {are_cm:.3}");
    assert!(are_tf < 1.0, "Tower+Fermat ARE {are_tf:.3}");
    let _ = are_el;
}

/// Heavy hitters detected by Tower+Fermat match ground truth with high F1.
#[test]
fn tower_fermat_heavy_hitter_f1() {
    let trace = caida_like_trace(20_000, 10);
    let truth = trace.size_map();
    let delta_h = 500u64;
    let truth_hh: HashSet<u32> = truth
        .iter()
        .filter(|(_, &v)| v > delta_h)
        .map(|(&f, _)| f)
        .collect();
    assert!(!truth_hh.is_empty());

    let th = 250u64;
    let mut tower = TowerSketch::new(TowerConfig::sized(150_000, 11));
    let mut fermat = FermatSketch::<u32>::new(FermatConfig::standard(2_000, 12));
    for (f, pkts) in &trace.flows {
        for _ in 0..*pkts {
            if tower.insert_and_query(*f as u64) >= th {
                fermat.insert(f);
            }
        }
    }
    let hh = fermat.decode();
    assert!(hh.success);
    let reported: Vec<u32> = hh
        .flows
        .iter()
        .filter(|(_, &q)| th + q.max(0) as u64 > delta_h)
        .map(|(&f, _)| f)
        .collect();
    let score = detection_score(reported, &truth_hh);
    assert!(score.f1 > 0.95, "F1 {:.4}", score.f1);
}

/// The full system loop works on every workload family.
#[test]
fn full_loop_on_all_workloads() {
    for (i, w) in WorkloadKind::ALL.into_iter().enumerate() {
        let mut sys = ChameleMon::testbed(DataPlaneConfig::small(100 + i as u64));
        let trace = testbed_trace(w, 1_500, 8, 200 + i as u64);
        let plan =
            LossPlan::build(&trace, VictimSelection::RandomRatio(0.05), 0.02, 300 + i as u64);
        let mut last_reported = 0;
        for _ in 0..4 {
            let out = sys.run_epoch(&trace, &plan);
            last_reported = out.analysis.loss_report.len();
        }
        assert!(
            last_reported > 0,
            "{}: no victims reported after settling",
            w.name()
        );
    }
}

/// Loss reports never hallucinate: every reported victim is a planned
/// victim, across several epochs and workloads.
#[test]
fn no_false_victims_after_settling() {
    let mut sys = ChameleMon::testbed(DataPlaneConfig::small(500));
    let trace = testbed_trace(WorkloadKind::Vl2, 1_000, 8, 501);
    let plan = LossPlan::build(&trace, VictimSelection::RandomRatio(0.08), 0.03, 502);
    for _ in 0..5 {
        let out = sys.run_epoch(&trace, &plan);
        if out.analysis.hh_decode_ok && out.analysis.hl_flowset.is_some() {
            for f in out.analysis.loss_report.keys() {
                assert!(
                    plan.victims.contains_key(f),
                    "reported non-victim {f:?} as victim"
                );
            }
        }
    }
}
