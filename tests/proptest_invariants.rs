//! Property-based tests over the core data structures' invariants, using
//! proptest: FermatSketch encode/decode roundtrips, addition/subtraction
//! algebra, TowerSketch's no-underestimate guarantee, flow-ID fragmenting,
//! and the metric definitions.

use chm_common::flowid::{FiveTuple, FlowId, FRAGMENT_MAX};
use chm_common::metrics::{detection_score, wmre};
use chm_common::prime::{add_mod, inv_mod, mul_mod, pow_mod, sub_mod, MERSENNE_P};
use chm_fermat::{FermatConfig, FermatSketch};
use chm_tower::{TowerConfig, TowerLevel, TowerSketch};
use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::HashMap;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Modular arithmetic over p = 2^61 − 1 forms a field on the tested ops.
    #[test]
    fn prime_field_axioms(a in 0..MERSENNE_P, b in 0..MERSENNE_P) {
        prop_assert_eq!(add_mod(a, b), add_mod(b, a));
        prop_assert_eq!(mul_mod(a, b), mul_mod(b, a));
        prop_assert_eq!(sub_mod(add_mod(a, b), b), a);
        if a != 0 {
            let inv = inv_mod(a).unwrap();
            prop_assert_eq!(mul_mod(a, inv), 1);
        }
        // Fermat's little theorem (the sketch's namesake).
        if a != 0 {
            prop_assert_eq!(pow_mod(a, MERSENNE_P - 1), 1);
        }
    }

    /// Every (flow set, weights) at sane load decodes to exactly itself.
    /// Decode *can* legitimately fail even at low load — two flows that
    /// collide in all `d` arrays leave no pure bucket (the 2-core of the
    /// hypergraph; probability (1/m)^{d-1} per pair) — so on failure we
    /// require that fresh hash functions recover the same exact multiset.
    #[test]
    fn fermat_roundtrip_exact(
        flows in vec((any::<u32>(), 1i64..500), 1..120),
        seed in any::<u64>(),
    ) {
        let mut truth: HashMap<u32, i64> = HashMap::new();
        for &(f, w) in &flows {
            *truth.entry(f).or_insert(0) += w;
        }
        let mut decoded = None;
        for attempt in 0..4u64 {
            // 120 flows max → 3×100 buckets = 2.5 buckets/flow: safe load.
            let mut s =
                FermatSketch::<u32>::new(FermatConfig::standard(100, seed ^ attempt));
            for &(f, w) in &flows {
                s.insert_weighted(&f, w);
            }
            let r = s.decode();
            if r.success {
                decoded = Some(r.flows);
                break;
            }
            // A failed decode must at least leave evidence of failure.
            prop_assert!(r.remaining_nonzero > 0);
        }
        let decoded = decoded.expect("decode failed under 4 independent hash families");
        prop_assert_eq!(decoded, truth);
    }

    /// add then subtract is the identity on sketch state.
    #[test]
    fn fermat_add_sub_inverse(
        flows_a in vec(any::<u32>(), 0..80),
        flows_b in vec(any::<u32>(), 0..80),
        seed in any::<u64>(),
    ) {
        let cfg = FermatConfig::standard(64, seed);
        let mut a = FermatSketch::<u32>::new(cfg);
        let mut b = FermatSketch::<u32>::new(cfg);
        for f in &flows_a { a.insert(f); }
        for f in &flows_b { b.insert(f); }
        let original = a.clone();
        a.add_assign_sketch(&b);
        a.sub_assign_sketch(&b);
        // Compare by decoding both (the internal representation is equal
        // too, but decode equality is the user-visible contract).
        let ra = a.decode();
        let ro = original.decode();
        prop_assert_eq!(ra.flows, ro.flows);
        prop_assert_eq!(ra.success, ro.success);
    }

    /// Upstream − downstream decodes exactly the difference multiset.
    #[test]
    fn fermat_difference_is_losses(
        sizes in vec(1u8..20, 10..60),
        loss_mask in vec(0u8..4, 10..60),
        seed in any::<u64>(),
    ) {
        let cfg = FermatConfig::standard(128, seed);
        let mut up = FermatSketch::<u32>::new(cfg);
        let mut down = FermatSketch::<u32>::new(cfg);
        let mut expected: HashMap<u32, i64> = HashMap::new();
        for (i, (&s, &m)) in sizes.iter().zip(&loss_mask).enumerate() {
            let f = i as u32;
            let total = s as i64;
            let lost = (m as i64).min(total);
            up.insert_weighted(&f, total);
            down.insert_weighted(&f, total - lost);
            if lost > 0 {
                expected.insert(f, lost);
            }
        }
        up.sub_assign_sketch(&down);
        let r = up.decode();
        prop_assert!(r.success);
        prop_assert_eq!(r.flows, expected);
    }

    /// TowerSketch never underestimates a flow below saturation.
    #[test]
    fn tower_no_underestimate(
        inserts in vec(0u64..200, 1..400),
    ) {
        let mut t = TowerSketch::new(TowerConfig {
            levels: vec![
                TowerLevel { width: 512, bits: 8 },
                TowerLevel { width: 256, bits: 16 },
            ],
            seed: 99,
        });
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for &k in &inserts {
            t.insert_and_query(k);
            *truth.entry(k).or_insert(0) += 1;
        }
        for (&k, &v) in &truth {
            prop_assert!(t.query(k) >= v);
        }
    }

    /// FiveTuple fragment/reassemble is the identity, and fragments stay in
    /// lane range.
    #[test]
    fn five_tuple_fragments_roundtrip(
        src in any::<u32>(), dst in any::<u32>(),
        sp in any::<u16>(), dp in any::<u16>(), proto in any::<u8>(),
    ) {
        let t = FiveTuple { src_ip: src, dst_ip: dst, src_port: sp, dst_port: dp, proto };
        let frags: Vec<u64> = (0..FiveTuple::FRAGMENTS).map(|i| t.fragment(i)).collect();
        for &f in &frags {
            prop_assert!(f <= FRAGMENT_MAX);
        }
        prop_assert_eq!(FiveTuple::try_from_fragments(&frags), Some(t));
    }

    /// F1 is always within [0,1] and equals 1 iff sets match exactly
    /// (on non-empty truth).
    #[test]
    fn f1_bounds(reported in vec(0u32..50, 0..50), truth_v in vec(0u32..50, 1..50)) {
        let truth: std::collections::HashSet<u32> = truth_v.into_iter().collect();
        let reported_set: std::collections::HashSet<u32> =
            reported.iter().copied().collect();
        let s = detection_score(reported_set.iter().copied(), &truth);
        prop_assert!((0.0..=1.0).contains(&s.f1));
        if s.f1 == 1.0 {
            prop_assert_eq!(&reported_set, &truth);
        }
        if reported_set == truth {
            prop_assert!((s.f1 - 1.0).abs() < 1e-12);
        }
    }

    /// WMRE is symmetric and zero only for identical histograms.
    #[test]
    fn wmre_properties(a in vec(0.0f64..100.0, 1..20), b in vec(0.0f64..100.0, 1..20)) {
        let w_ab = wmre(&a, &b);
        let w_ba = wmre(&b, &a);
        prop_assert!((w_ab - w_ba).abs() < 1e-9);
        prop_assert!(w_ab >= 0.0);
        prop_assert!((wmre(&a, &a)).abs() < 1e-12);
    }
}

/// Fingerprints strictly reduce (or keep equal) the count of misjudged pure
/// buckets in an adversarially overloaded sketch — deterministic check on a
/// seeded ensemble rather than proptest (the property is statistical).
#[test]
fn fingerprints_never_hurt_decode() {
    let mut plain_successes = 0;
    let mut fp_successes = 0;
    for seed in 0..40u64 {
        let flows = 300;
        let buckets = (flows as f64 * 1.26 / 3.0).ceil() as usize;
        let mut plain = FermatSketch::<u32>::new(FermatConfig {
            arrays: 3,
            buckets_per_array: buckets,
            fingerprint_bits: 0,
            seed,
        });
        let mut fp = FermatSketch::<u32>::new(FermatConfig {
            arrays: 3,
            buckets_per_array: buckets,
            fingerprint_bits: 8,
            seed,
        });
        for i in 0..flows {
            let f = (seed as u32) * 10_000 + i;
            plain.insert(&f);
            fp.insert(&f);
        }
        if plain.decode().success {
            plain_successes += 1;
        }
        if fp.decode().success {
            fp_successes += 1;
        }
    }
    // With the same number of buckets, fingerprints can only help (§A.4,
    // Figure 10(a)).
    assert!(
        fp_successes >= plain_successes,
        "fp {fp_successes} < plain {plain_successes}"
    );
}

// ---------------------------------------------------------------------------
// Service-mode invariant: dropped reports never regress the deployed config.
// ---------------------------------------------------------------------------

use chm_serve::{FaultPlan, ServeConfig, ServeRuntime};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The strict-growth control-plane invariant, end to end: under ANY
    /// prefix of dropped/paused reports, a blind epoch (controller
    /// analyzed nothing) never changes the deployed configuration — the
    /// controller holds what it has rather than resetting or thrashing.
    /// Losing telemetry must never *undo* a reconfiguration decision.
    #[test]
    fn dropped_report_prefixes_never_regress_deployed_config(
        seed in 0u64..1_000,
        report_loss in 0.0f64..1.0,
        pause in 0.0f64..0.6,
    ) {
        let scenario = chm_scenarios::Scenario::builder("prop_drop")
            .seed(seed)
            .flows(150)
            .build();
        let faults = FaultPlan {
            report_loss,
            pause,
            ..FaultPlan::none(seed)
        };
        let mut rt = ServeRuntime::new(ServeConfig::new(scenario, faults));
        let mut prev: Option<(usize, usize, usize, f64)> = None;
        for _ in 0..12 {
            let r = rt.step();
            let staged = (r.m_hh, r.m_hl, r.m_ll, r.sample_rate);
            if r.blind {
                if let Some(p) = prev {
                    prop_assert_eq!(
                        staged, p,
                        "blind epoch {} changed the deployed config", r.epoch
                    );
                }
            }
            prev = Some(staged);
        }
    }
}
